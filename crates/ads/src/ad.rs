//! The ad database.
//!
//! During the paper's three-month collection phase the extension harvested
//! the ads users received; after filtering broken and offensive creatives,
//! ~12 K ads remained (Section 5.2). Each ad has a creative with a pixel
//! size (replacement requires a size match, Section 5.3) and a landing
//! page whose categories describe what the ad sells.

use crate::network::ServedAdKind;
use hostprof_ontology::CategoryVector;
use hostprof_synth::{HostId, HostKind, World};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an ad in the database.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AdId(pub u32);

impl AdId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A creative's pixel dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CreativeSize {
    /// Width in pixels.
    pub width: u16,
    /// Height in pixels.
    pub height: u16,
}

/// The standard IAB display sizes the synthetic ecosystem uses.
pub const IAB_SIZES: [CreativeSize; 6] = [
    CreativeSize {
        width: 300,
        height: 250,
    }, // medium rectangle
    CreativeSize {
        width: 728,
        height: 90,
    }, // leaderboard
    CreativeSize {
        width: 160,
        height: 600,
    }, // skyscraper
    CreativeSize {
        width: 320,
        height: 50,
    }, // mobile banner
    CreativeSize {
        width: 300,
        height: 600,
    }, // half page
    CreativeSize {
        width: 970,
        height: 250,
    }, // billboard
];

/// One ad.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ad {
    /// Stable id (== index into the database).
    pub id: AdId,
    /// Creative pixel size.
    pub size: CreativeSize,
    /// The site the landing page belongs to.
    pub landing_host: HostId,
    /// Categories of the landing page (ground truth).
    pub categories: CategoryVector,
    /// Whether the ontology (Adwords) covers the landing page — only
    /// labeled ads appear in the Figure 6 topic analysis, mirroring the
    /// paper's "only ads for which Google Adwords returned an answer".
    pub labeled: bool,
    /// How prominent the advertiser is; premium campaigns draw from the
    /// popular end.
    pub weight: f64,
}

impl Ad {
    /// Convenience: the served-ad record for bookkeeping.
    pub fn served(&self, kind: ServedAdKind) -> (AdId, ServedAdKind) {
        (self.id, kind)
    }
}

/// Outcome of the collection-phase harvest (Section 5.2: ads "were
/// manually filtered to remove ads not properly downloaded … or
/// offensive", leaving ~12 K of the raw capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarvestStats {
    /// Ads captured by the extension during collection.
    pub raw: usize,
    /// Creatives that failed to capture (dynamic HTML5).
    pub broken: usize,
    /// Ads rejected as offensive.
    pub offensive: usize,
    /// Ads kept in the database.
    pub kept: usize,
}

/// The filtered ad inventory plus category indexes for fast selection.
#[derive(Debug, Clone)]
pub struct AdDatabase {
    ads: Vec<Ad>,
    /// Ads grouped by their landing page's strongest category.
    by_primary_category: HashMap<u16, Vec<AdId>>,
    /// Ads grouped by creative size.
    by_size: HashMap<CreativeSize, Vec<AdId>>,
    /// Ads grouped by landing page, in inventory order (retargeting).
    by_landing: HashMap<HostId, Vec<AdId>>,
    /// Largest advertiser weight, for premium rejection sampling.
    max_weight: f64,
}

impl AdDatabase {
    /// Harvest an inventory of `num_ads` ads from a world: each ad lands on
    /// a content site (popularity-weighted, as popular advertisers run more
    /// campaigns), inherits its categories, and gets an IAB creative size.
    pub fn generate(world: &World, num_ads: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sites: Vec<&hostprof_synth::Host> = world
            .hosts()
            .iter()
            .filter(|h| h.kind == HostKind::Site)
            .collect();
        assert!(!sites.is_empty(), "world has no sites to advertise");
        let weights: Vec<f64> = sites.iter().map(|h| h.popularity).collect();
        let sampler = hostprof_synth::sampling::WeightedIndex::new(&weights)
            .expect("site popularities are positive");

        let mut ads = Vec::with_capacity(num_ads);
        for i in 0..num_ads {
            let site = sites[sampler.sample(&mut rng)];
            let size = IAB_SIZES[rng.gen_range(0..IAB_SIZES.len())];
            ads.push(Ad {
                id: AdId(i as u32),
                size,
                landing_host: site.id,
                categories: site.categories.clone(),
                labeled: world.ontology().is_labeled(&site.name),
                weight: site.popularity,
            });
        }
        Self::from_ads(ads)
    }

    /// The full collection-phase pipeline: capture `raw_count` ads, drop
    /// the ~12 % whose creatives fail to download and the ads landing on
    /// nightlife/adult-adjacent sites (the paper's offensive filter), and
    /// build the database from the survivors.
    pub fn harvest(world: &World, raw_count: usize, seed: u64) -> (Self, HarvestStats) {
        let raw = Self::generate(world, raw_count, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf11_7e12);
        let offensive_topic = world
            .hierarchy()
            .top_ids()
            .find(|t| world.hierarchy().top_name(*t) == "Clubs & Nightlife");
        let mut broken = 0usize;
        let mut offensive = 0usize;
        let mut kept: Vec<Ad> = Vec::with_capacity(raw_count);
        for ad in raw.ads() {
            if rng.gen_bool(0.12) {
                broken += 1;
                continue;
            }
            let topic = world.host(ad.landing_host).top_topic;
            if topic.is_some() && topic == offensive_topic {
                offensive += 1;
                continue;
            }
            let mut ad = ad.clone();
            ad.id = AdId(kept.len() as u32);
            kept.push(ad);
        }
        let stats = HarvestStats {
            raw: raw_count,
            broken,
            offensive,
            kept: kept.len(),
        };
        (Self::from_ads(kept), stats)
    }

    /// Build the indexes over an explicit inventory.
    pub fn from_ads(ads: Vec<Ad>) -> Self {
        let mut by_primary_category: HashMap<u16, Vec<AdId>> = HashMap::new();
        let mut by_size: HashMap<CreativeSize, Vec<AdId>> = HashMap::new();
        let mut by_landing: HashMap<HostId, Vec<AdId>> = HashMap::new();
        let mut max_weight = f64::MIN_POSITIVE;
        for ad in &ads {
            if let Some(c) = ad.categories.argmax() {
                by_primary_category.entry(c.0).or_default().push(ad.id);
            }
            by_size.entry(ad.size).or_default().push(ad.id);
            by_landing.entry(ad.landing_host).or_default().push(ad.id);
            max_weight = max_weight.max(ad.weight);
        }
        Self {
            ads,
            by_primary_category,
            by_size,
            by_landing,
            max_weight,
        }
    }

    /// Number of ads.
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// Ad by id.
    ///
    /// # Panics
    /// Panics when the id is not from this database.
    pub fn ad(&self, id: AdId) -> &Ad {
        &self.ads[id.index()]
    }

    /// All ads.
    pub fn ads(&self) -> &[Ad] {
        &self.ads
    }

    /// Ads whose strongest landing category is `category`.
    pub fn by_primary_category(&self, category: u16) -> &[AdId] {
        self.by_primary_category
            .get(&category)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Ads with a given creative size.
    pub fn by_size(&self, size: CreativeSize) -> &[AdId] {
        self.by_size.get(&size).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ads landing on a given site, in inventory order.
    pub fn by_landing_host(&self, host: HostId) -> &[AdId] {
        self.by_landing.get(&host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The largest advertiser weight in the inventory (≥ f64::MIN_POSITIVE
    /// even when empty, so rejection sampling never divides by zero).
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// The ad whose category vector is Euclidean-closest to `query` among
    /// ads with primary category `category` (falling back to a global scan
    /// when that bucket is empty). Used by the eavesdropper's per-host ad
    /// pick.
    pub fn closest_ad_in_category(&self, category: u16, query: &CategoryVector) -> Option<AdId> {
        let bucket = self.by_primary_category(category);
        let candidates: Box<dyn Iterator<Item = &AdId>> = if bucket.is_empty() {
            Box::new(self.ads.iter().map(|a| &a.id))
        } else {
            Box::new(bucket.iter())
        };
        candidates
            .min_by(|a, b| {
                let da = self.ads[a.index()].categories.euclidean(query);
                let db = self.ads[b.index()].categories.euclidean(query);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_synth::WorldConfig;

    fn db() -> (World, AdDatabase) {
        let world = World::generate(&WorldConfig::tiny());
        let db = AdDatabase::generate(&world, 500, 7);
        (world, db)
    }

    #[test]
    fn generation_fills_the_inventory() {
        let (world, db) = db();
        assert_eq!(db.len(), 500);
        for ad in db.ads() {
            assert_eq!(world.host(ad.landing_host).kind, HostKind::Site);
            assert!(!ad.categories.is_empty());
            assert!(IAB_SIZES.contains(&ad.size));
        }
    }

    #[test]
    fn some_ads_are_labeled_and_some_not() {
        let (_, db) = db();
        let labeled = db.ads().iter().filter(|a| a.labeled).count();
        assert!(labeled > 0, "popular landing pages are in Adwords");
        assert!(labeled < db.len(), "coverage is partial");
    }

    #[test]
    fn category_index_is_consistent() {
        let (_, db) = db();
        for (cat, ids) in db.by_primary_category.iter() {
            for id in ids {
                assert_eq!(db.ad(*id).categories.argmax().unwrap().0, *cat);
            }
        }
    }

    #[test]
    fn size_index_is_consistent_and_covers_inventory() {
        let (_, db) = db();
        let total: usize = IAB_SIZES.iter().map(|s| db.by_size(*s).len()).sum();
        assert_eq!(total, db.len());
    }

    #[test]
    fn closest_ad_prefers_matching_categories() {
        let (_, db) = db();
        let some_ad = &db.ads()[0];
        let cat = some_ad.categories.argmax().unwrap();
        let found = db
            .closest_ad_in_category(cat.0, &some_ad.categories)
            .unwrap();
        // The found ad's distance can't exceed the probe ad's own distance
        // (which is 0 to itself — so we must find something at distance 0
        // or the probe itself).
        let d = db.ad(found).categories.euclidean(&some_ad.categories);
        assert!(d <= 1e-6, "distance {d}");
    }

    #[test]
    fn popular_sites_get_more_ads() {
        let (world, db) = db();
        // The most popular site should appear as a landing page more often
        // than the median site.
        let mut counts: HashMap<HostId, usize> = HashMap::new();
        for ad in db.ads() {
            *counts.entry(ad.landing_host).or_insert(0) += 1;
        }
        let top_site = world
            .hosts()
            .iter()
            .filter(|h| h.kind == HostKind::Site)
            .max_by(|a, b| a.popularity.partial_cmp(&b.popularity).unwrap())
            .unwrap();
        assert!(counts.get(&top_site.id).copied().unwrap_or(0) >= 2);
    }

    #[test]
    fn harvest_filters_broken_and_offensive_ads() {
        let world = World::generate(&WorldConfig::tiny());
        let (db, stats) = AdDatabase::harvest(&world, 1000, 3);
        assert_eq!(stats.raw, 1000);
        assert_eq!(stats.kept, db.len());
        assert_eq!(stats.raw, stats.kept + stats.broken + stats.offensive);
        assert!(stats.broken > 50, "≈12% broken: {}", stats.broken);
        // Ids are re-densified.
        for (i, ad) in db.ads().iter().enumerate() {
            assert_eq!(ad.id.index(), i);
        }
        // No kept ad lands on the offensive topic.
        let nightlife = world
            .hierarchy()
            .top_ids()
            .find(|t| world.hierarchy().top_name(*t) == "Clubs & Nightlife")
            .unwrap();
        for ad in db.ads() {
            assert_ne!(world.host(ad.landing_host).top_topic, Some(nightlife));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(&WorldConfig::tiny());
        let a = AdDatabase::generate(&world, 100, 7);
        let b = AdDatabase::generate(&world, 100, 7);
        for (x, y) in a.ads().iter().zip(b.ads()) {
            assert_eq!(x.landing_host, y.landing_host);
            assert_eq!(x.size, y.size);
        }
    }
}
