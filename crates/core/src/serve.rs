//! The always-on serving loop: ingest → window → profile.
//!
//! The paper's deployment is a *service*, not a batch job: an on-path
//! observer watches traffic continuously and re-profiles every active user
//! on a 10-minute report cadence (Section 5.4). This module restructures
//! the batch pipeline into that shape (DESIGN.md §12):
//!
//! * **Sharded ingest lanes** — N independent [`SniObserver`]s, one per
//!   lane, with every packet routed by a hash of its client IP so all
//!   traffic of one client lands on the same lane. Per-client packet order
//!   is therefore preserved regardless of the lane count, which is what
//!   makes profiles bit-identical across `lanes ∈ {1, 4, …}`.
//! * **Incremental windowing** ([`IncrementalWindower`]) — per-user event
//!   timelines kept sorted under out-of-order arrival, with eviction
//!   bounded to one session window behind the last closed tick.
//! * **Bounded-lateness watermarking** — the watermark trails the maximum
//!   packet timestamp by `lateness_ms`; a report tick at boundary `W`
//!   fires only once the watermark passes `W`, so any event with `t ≤ W`
//!   that arrives at most `lateness_ms` after the stream reached `W` still
//!   lands in the right window. Events arriving *beyond* the bound are
//!   dropped and counted ([`IncrementalWindower::late_dropped`]), never
//!   silently misfiled.
//! * **Tick scheduler** — boundaries at every multiple of
//!   `report_interval_ms`; each tick profiles exactly the users whose
//!   latest activity falls in `(W_prev, W]`, through the existing
//!   [`BatchProfiler`] (and therefore whatever [`NnIndex`] the profiler
//!   was configured with), so a tick's cost is one batched kNN pass.
//!
//! ## Equivalence contract
//!
//! Feeding a finite packet stream through [`ServeEngine`] and flushing
//! produces, for every user, the same sequence of `(anchor, profile)`
//! pairs a batch run would compute by anchoring a session at the user's
//! last request before each tick boundary — bit-identical, for any lane
//! count and any arrival interleaving whose disorder stays within the
//! lateness bound. `tests/streaming_equivalence.rs` proves this against
//! the batch pipeline with chaos-generated reorderings; golden replay
//! (`hostprof serve --golden`) pins the streaming path to the same
//! committed snapshots as the batch path.
//!
//! [`NnIndex`]: hostprof_embed::index::NnIndex

use crate::batch::BatchProfiler;
use crate::profiler::SessionProfile;
use crate::session::Session;
use crate::versioned::VersionedModel;
use hostprof_net::{FlowStats, ObserverConfig, ObserverStats, Packet, SniObserver};
use hostprof_ontology::Blocklist;
use hostprof_store::HostInterner;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// Knobs of the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Ingest lanes (per-lane observers). Packets shard by client IP.
    pub lanes: usize,
    /// Session window length `T` (paper: 20 minutes).
    pub session_window_ms: u64,
    /// Report tick cadence (paper: 10 minutes).
    pub report_interval_ms: u64,
    /// Watermark lag: how far behind the newest packet timestamp the
    /// event-time clock runs. Out-of-order arrivals within this bound are
    /// windowed exactly; beyond it they are dropped and counted.
    pub lateness_ms: u64,
    /// Ingest limits for every lane observer.
    pub observer: ObserverConfig,
    /// Whether lane observers harvest plaintext DNS names too.
    pub harvest_dns: bool,
    /// Keep a copy of every closed window (pre-dedup, in tick order) so
    /// the online trainer can harvest them as an update corpus via
    /// [`ServeEngine::take_closed_windows`]. Off by default — serving
    /// alone should not accumulate unbounded window history.
    pub collect_windows: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lanes: 1,
            session_window_ms: 20 * 60 * 1000,
            report_interval_ms: 10 * 60 * 1000,
            lateness_ms: 2000,
            observer: ObserverConfig::default(),
            harvest_dns: false,
            collect_windows: false,
        }
    }
}

/// One user's window close at a tick: the raw (pre-dedup) hostname window
/// behind the anchor, in event-time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowClose {
    /// Client key (IP).
    pub user: u32,
    /// The user's last event time at or before the tick boundary; the
    /// session window is `(anchor - T, anchor]`.
    pub anchor: u64,
    /// Hostnames in the window, duplicates intact, time-ordered.
    pub window: Vec<String>,
}

/// Per-user incremental session windowing under out-of-order arrival.
///
/// Each user's events are kept time-sorted with *stable* insertion (an
/// event inserts after all existing events of equal time), so an in-order
/// feed reproduces arrival order exactly and a bounded-disorder feed
/// converges to the same timeline a global sort would produce. Closing a
/// tick at boundary `W` yields, for every user whose latest `t ≤ W` event
/// is newer than the previous boundary, the window `(anchor - T, anchor]`
/// — precisely the batch pipeline's session for that user at that tick.
///
/// Memory is bounded: closing a tick evicts every event that can no
/// longer appear in any future window (anything at or before
/// `(W + 1) - T`), so a user retains at most one window plus the events
/// that arrived past the last closed boundary.
#[derive(Debug)]
pub struct IncrementalWindower {
    window_ms: u64,
    /// Buffered events as `(time, interned host id)` — 12 bytes of
    /// payload per event instead of an owned `String`, with every
    /// distinct hostname stored once in `interner`.
    users: BTreeMap<u32, VecDeque<(u64, u32)>>,
    /// The hostname table the event ids index into. Append-only; ids are
    /// dense in first-seen order, so replaying the same stream rebuilds
    /// the same table (pinned by the oracle's interner differential).
    interner: HostInterner,
    /// Users with activity not yet covered by a closed tick. `BTreeSet`
    /// so every tick visits users in ascending key order — determinism
    /// across runs and lane counts.
    dirty: BTreeSet<u32>,
    /// Boundary of the last closed tick; events at or before it arrive
    /// too late to be windowed correctly and are dropped, counted.
    closed_through: Option<u64>,
    late_dropped: u64,
    resident_events: usize,
    peak_resident_events: usize,
}

impl IncrementalWindower {
    /// A windower for session length `window_ms`.
    pub fn new(window_ms: u64) -> Self {
        Self {
            window_ms,
            users: BTreeMap::new(),
            interner: HostInterner::new(),
            dirty: BTreeSet::new(),
            closed_through: None,
            late_dropped: 0,
            resident_events: 0,
            peak_resident_events: 0,
        }
    }

    /// Insert one event. Returns `false` (and counts the drop) when the
    /// event lands at or before an already-closed tick boundary — the
    /// window it belonged to has been reported and cannot be reopened.
    pub fn insert(&mut self, user: u32, t: u64, hostname: &str) -> bool {
        if let Some(closed) = self.closed_through {
            if t <= closed {
                self.late_dropped += 1;
                return false;
            }
        }
        let host = self.interner.intern(hostname);
        let events = self.users.entry(user).or_default();
        // Stable sorted insert: after every existing event with time ≤ t.
        let pos = events.partition_point(|(et, _)| *et <= t);
        if pos == events.len() {
            events.push_back((t, host));
        } else {
            events.insert(pos, (t, host));
        }
        self.dirty.insert(user);
        self.resident_events += 1;
        self.peak_resident_events = self.peak_resident_events.max(self.resident_events);
        true
    }

    /// Close the tick at boundary `w` (must be past any previously closed
    /// boundary): report a [`WindowClose`] for every user whose latest
    /// event at or before `w` is fresh (newer than the previous boundary),
    /// evict events no future window can contain, and advance the
    /// late-arrival floor to `w`. Users are reported in ascending key
    /// order.
    pub fn close_tick(&mut self, w: u64) -> Vec<WindowClose> {
        debug_assert!(self.closed_through.is_none_or(|p| w > p));
        let prev = self.closed_through;
        let mut closes = Vec::new();
        let mut still_dirty: Vec<u32> = Vec::new();
        let mut emptied: Vec<u32> = Vec::new();
        // Events at or before this can never appear in a future window:
        // every future anchor is > w, so every future window starts after
        // (w + 1) - T. A zero threshold means windows still reach the
        // epoch, where the boundary is inclusive — evict nothing.
        let evict_through = (w + 1).saturating_sub(self.window_ms);
        for &user in &self.dirty {
            let Some(events) = self.users.get_mut(&user) else {
                continue;
            };
            let upto = events.partition_point(|(t, _)| *t <= w);
            if upto > 0 {
                let anchor = events[upto - 1].0;
                if prev.is_none_or(|p| anchor > p) {
                    let start_idx = match anchor.checked_sub(self.window_ms) {
                        // Window reaches (or starts exactly at) the epoch:
                        // inclusive from t = 0.
                        None | Some(0) => 0,
                        Some(start) => events.partition_point(|(t, _)| *t <= start),
                    };
                    // Materialize hostnames only here, at report time —
                    // the one place downstream still speaks strings.
                    let window: Vec<String> = events
                        .iter()
                        .skip(start_idx)
                        .take(upto - start_idx)
                        .map(|(_, h)| self.interner.name(*h).to_string())
                        .collect();
                    closes.push(WindowClose {
                        user,
                        anchor,
                        window,
                    });
                }
            }
            if evict_through > 0 {
                while events.front().is_some_and(|(t, _)| *t <= evict_through) {
                    events.pop_front();
                    self.resident_events -= 1;
                }
            }
            if events.is_empty() {
                emptied.push(user);
            } else if events.back().is_some_and(|(t, _)| *t > w) {
                // Activity past this boundary: the next tick must look at
                // this user again.
                still_dirty.push(user);
            }
        }
        for user in emptied {
            self.users.remove(&user);
        }
        self.dirty = still_dirty.into_iter().collect();
        self.closed_through = Some(w);
        closes
    }

    /// Events dropped for arriving beyond the lateness bound.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Distinct hostnames interned so far.
    pub fn interned_hosts(&self) -> usize {
        self.interner.len()
    }

    /// Heap footprint of the hostname table, in bytes.
    pub fn interned_table_bytes(&self) -> usize {
        self.interner.heap_bytes()
    }

    /// Events currently buffered across all users.
    pub fn resident_events(&self) -> usize {
        self.resident_events
    }

    /// High-water mark of [`resident_events`](Self::resident_events).
    pub fn peak_resident_events(&self) -> usize {
        self.peak_resident_events
    }

    /// Users currently tracked.
    pub fn tracked_users(&self) -> usize {
        self.users.len()
    }

    /// Users with activity not yet covered by a closed tick.
    pub fn dirty_users(&self) -> usize {
        self.dirty.len()
    }

    /// Boundary of the last closed tick, if any.
    pub fn closed_through(&self) -> Option<u64> {
        self.closed_through
    }

    /// Earliest event not yet covered by a closed tick, across all dirty
    /// users — the next tick boundary at or past it is the first boundary
    /// that can report anything. `None` when no such event exists, which
    /// lets the scheduler fast-forward across idle stretches.
    pub fn min_pending_event(&self) -> Option<u64> {
        self.dirty
            .iter()
            .filter_map(|u| {
                let events = self.users.get(u)?;
                match self.closed_through {
                    None => events.front().map(|(t, _)| *t),
                    Some(floor) => {
                        let i = events.partition_point(|(t, _)| *t <= floor);
                        events.get(i).map(|(t, _)| *t)
                    }
                }
            })
            .min()
    }
}

/// One profiled user at a tick.
#[derive(Debug, Clone)]
pub struct TickEntry {
    /// Client key (IP).
    pub user: u32,
    /// Session anchor: the user's last event at or before the boundary.
    pub anchor: u64,
    /// The profile, or `None` when the session emptied out (pure-tracker
    /// window) or carried no profilable signal.
    pub profile: Option<SessionProfile>,
}

/// A fired report tick.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// The tick boundary (a multiple of `report_interval_ms`, except the
    /// final flush tick which is the first boundary past the stream end).
    pub boundary: u64,
    /// Profiled users, ascending by key.
    pub entries: Vec<TickEntry>,
    /// Wall-clock time spent closing windows and profiling this tick.
    pub compute_micros: u64,
    /// Sequence number of the model version this tick profiled against:
    /// the versioned handle's current `seq` at fire time, or 0 when the
    /// engine runs against a fixed (unversioned) profiler. A hot swap
    /// landing mid-stream shows up as this number changing between
    /// consecutive ticks — never within one.
    pub model_seq: u64,
}

/// Aggregate serving-loop counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Packets ingested.
    pub packets: u64,
    /// Observations recovered across all lanes.
    pub observations: u64,
    /// Ticks fired (including empty ones).
    pub ticks: u64,
    /// Sessions sent to the profiler.
    pub sessions_profiled: u64,
    /// Sessions that produced a profile.
    pub profiles_emitted: u64,
}

/// What a tick profiles against: a fixed profiler bound at engine
/// construction (the original serving shape), or a [`VersionedModel`]
/// handle re-read at every tick so hot swaps published between ticks
/// take effect without the engine noticing (DESIGN.md §14).
enum TickSource<'a> {
    Fixed(BatchProfiler<'a>),
    Versioned {
        model: &'a VersionedModel,
        /// Worker threads for the per-tick batch profile call.
        threads: usize,
    },
}

/// The serving loop: lanes of [`SniObserver`]s feeding an
/// [`IncrementalWindower`], with a watermark-driven tick scheduler
/// profiling through a [`BatchProfiler`].
pub struct ServeEngine<'a> {
    config: ServeConfig,
    lanes: Vec<SniObserver>,
    windower: IncrementalWindower,
    source: TickSource<'a>,
    blocklist: Option<&'a Blocklist>,
    /// Next tick boundary to fire.
    next_tick: u64,
    /// Maximum packet/event timestamp seen; the watermark trails it.
    max_t: u64,
    stats: ServeStats,
    /// Closed windows retained for the online trainer
    /// (`config.collect_windows`), in tick order then user order.
    closed_windows: Vec<WindowClose>,
}

/// splitmix64 — the repo's standard cheap seeded mix, used here to shard
/// clients over lanes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<'a> ServeEngine<'a> {
    /// Build an engine. The profiler carries the embeddings/ontology
    /// borrows and the worker-thread count; `blocklist` filters tracker
    /// hostnames out of sessions exactly as the batch pipeline does.
    pub fn new(
        config: ServeConfig,
        profiler: BatchProfiler<'a>,
        blocklist: Option<&'a Blocklist>,
    ) -> Self {
        Self::with_source(config, TickSource::Fixed(profiler), blocklist)
    }

    /// Build an engine over a hot-swappable [`VersionedModel`]: each tick
    /// takes the handle's current version with one atomic load and
    /// profiles the whole tick against it, so a publish landing mid-tick
    /// takes effect at the next tick and no tick ever mixes versions.
    /// `threads` sizes the per-tick batch profile call.
    pub fn with_versioned(
        config: ServeConfig,
        model: &'a VersionedModel,
        threads: usize,
        blocklist: Option<&'a Blocklist>,
    ) -> Self {
        Self::with_source(config, TickSource::Versioned { model, threads }, blocklist)
    }

    fn with_source(
        config: ServeConfig,
        source: TickSource<'a>,
        blocklist: Option<&'a Blocklist>,
    ) -> Self {
        let lanes = (0..config.lanes.max(1))
            .map(|_| {
                let o = SniObserver::with_config(config.observer);
                if config.harvest_dns {
                    o.with_dns_harvesting()
                } else {
                    o
                }
            })
            .collect();
        Self {
            next_tick: config.report_interval_ms.max(1),
            windower: IncrementalWindower::new(config.session_window_ms),
            lanes,
            config,
            source,
            blocklist,
            max_t: 0,
            stats: ServeStats::default(),
            closed_windows: Vec::new(),
        }
    }

    /// Which lane a client's packets land on. Pure in the client IP, so
    /// one client's traffic is never split across lanes — the property
    /// that makes results independent of the lane count.
    pub fn lane_of(&self, client_ip: u32) -> usize {
        (splitmix64(client_ip as u64) % self.lanes.len() as u64) as usize
    }

    /// Ingest one packet; returns any ticks the watermark released.
    pub fn ingest_packet(&mut self, pkt: &Packet) -> Vec<TickReport> {
        self.stats.packets += 1;
        let lane = self.lane_of(pkt.src.ip);
        self.lanes[lane].process(pkt);
        if !self.lanes[lane].observations().is_empty() {
            for obs in self.lanes[lane].take_observations() {
                self.stats.observations += 1;
                self.windower.insert(obs.client_ip, obs.t_ms, &obs.hostname);
            }
        }
        self.advance(pkt.t_ms)
    }

    /// Ingest a pre-extracted observation (bypassing the observers) —
    /// the entry point for sources that already speak `(t, client, host)`.
    pub fn ingest_observation(
        &mut self,
        client: u32,
        t_ms: u64,
        hostname: &str,
    ) -> Vec<TickReport> {
        self.stats.observations += 1;
        self.windower.insert(client, t_ms, hostname);
        self.advance(t_ms)
    }

    /// Advance the event-time clock and fire every tick whose boundary
    /// the watermark has passed.
    fn advance(&mut self, t: u64) -> Vec<TickReport> {
        if t > self.max_t {
            self.max_t = t;
        }
        self.fire_due(self.max_t.saturating_sub(self.config.lateness_ms))
    }

    /// Fire every due tick with boundary ≤ `through`. Boundaries that
    /// cannot report anything (no uncovered event at or before them) are
    /// skipped in one step, so an idle gap in the stream costs O(1) ticks
    /// instead of one per elapsed interval.
    fn fire_due(&mut self, through: u64) -> Vec<TickReport> {
        let interval = self.config.report_interval_ms;
        let mut out = Vec::new();
        while self.next_tick <= through {
            let last_due = self.next_tick + ((through - self.next_tick) / interval) * interval;
            // The first boundary that can have a fresh anchor covers the
            // earliest not-yet-reported event.
            self.next_tick = match self.windower.min_pending_event() {
                Some(t) => (t.div_ceil(interval) * interval).clamp(self.next_tick, last_due),
                None => last_due,
            };
            if let Some(tick) = self.fire_tick() {
                out.push(tick);
            }
        }
        out
    }

    /// Fire the tick at `next_tick`; `None` when no user had fresh
    /// activity (the boundary still advances).
    fn fire_tick(&mut self) -> Option<TickReport> {
        let boundary = self.next_tick;
        self.next_tick += self.config.report_interval_ms;
        self.stats.ticks += 1;
        let started = Instant::now();
        let closes = self.windower.close_tick(boundary);
        if closes.is_empty() {
            return None;
        }
        if self.config.collect_windows {
            self.closed_windows.extend(closes.iter().cloned());
        }
        let sessions: Vec<Session> = closes
            .iter()
            .map(|c| Session::from_window(c.window.iter().map(String::as_str), self.blocklist))
            .collect();
        self.stats.sessions_profiled += sessions.len() as u64;
        let (profiles, model_seq) = match &self.source {
            TickSource::Fixed(batch) => (batch.profile_sessions(&sessions), 0),
            TickSource::Versioned { model, threads } => {
                // One atomic load pins the version for the whole tick: the
                // weights, the labeled tables, and the kNN index all come
                // from the same bundle, however many publishes race past.
                let version = model.load();
                let batch = BatchProfiler::new(version.profiler(), *threads);
                (batch.profile_sessions(&sessions), version.seq())
            }
        };
        let entries: Vec<TickEntry> = closes
            .into_iter()
            .zip(profiles)
            .map(|(c, profile)| {
                if profile.is_some() {
                    self.stats.profiles_emitted += 1;
                }
                TickEntry {
                    user: c.user,
                    anchor: c.anchor,
                    profile,
                }
            })
            .collect();
        Some(TickReport {
            boundary,
            entries,
            compute_micros: started.elapsed().as_micros() as u64,
            model_seq,
        })
    }

    /// End of stream: fire every boundary the stream reached regardless
    /// of the lateness margin, then one closing tick past the last event
    /// so tail activity is profiled too.
    pub fn flush(&mut self) -> Vec<TickReport> {
        let mut out = self.fire_due(self.max_t);
        if let Some(tick) = self.fire_tick() {
            out.push(tick);
        }
        out
    }

    /// Serving-loop counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Drain the windows collected since the last call (requires
    /// `config.collect_windows`; always empty otherwise). Order is
    /// deterministic — tick order, then ascending user key within a tick —
    /// and independent of the lane count, because window content is lane-
    /// invariant (the streaming-equivalence contract above). This is the
    /// online trainer's corpus feed.
    pub fn take_closed_windows(&mut self) -> Vec<WindowClose> {
        std::mem::take(&mut self.closed_windows)
    }

    /// The windower, for inspection (late drops, resident events).
    pub fn windower(&self) -> &IncrementalWindower {
        &self.windower
    }

    /// Lane count.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Observer counters merged across every lane; the taxonomy invariant
    /// `parse_errors == taxonomy_total()` survives the merge.
    pub fn observer_stats(&self) -> ObserverStats {
        let mut total = ObserverStats::default();
        for lane in &self.lanes {
            total.merge(&lane.stats());
        }
        total
    }

    /// Flow-table counters merged across every lane.
    pub fn flow_stats(&self) -> FlowStats {
        let mut total = FlowStats::default();
        for lane in &self.lanes {
            total.merge(&lane.flow_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, ProfilerConfig};
    use hostprof_embed::{EmbeddingSet, Vocab};
    use hostprof_net::tls::ClientHello;
    use hostprof_net::{Endpoint, Transport};
    use hostprof_ontology::{CategoryId, CategoryVector, Ontology};

    const MIN10: u64 = 600_000;

    fn windower() -> IncrementalWindower {
        IncrementalWindower::new(1_200_000) // T = 20 min
    }

    fn win(c: &WindowClose) -> Vec<&str> {
        c.window.iter().map(String::as_str).collect()
    }

    #[test]
    fn in_order_feed_windows_like_batch() {
        let mut w = windower();
        w.insert(1, 100, "a.com");
        w.insert(1, 200_000, "b.com");
        w.insert(2, 599_999, "c.com");
        let closes = w.close_tick(MIN10);
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].user, 1);
        assert_eq!(closes[0].anchor, 200_000);
        assert_eq!(win(&closes[0]), ["a.com", "b.com"]);
        assert_eq!(closes[1].user, 2);
        assert_eq!(closes[1].anchor, 599_999);
    }

    #[test]
    fn out_of_order_within_bound_lands_in_the_right_window() {
        let mut sorted = windower();
        let mut shuffled = windower();
        let events: [(u64, &str); 5] = [
            (100, "a.com"),
            (5_000, "b.com"),
            (5_000, "c.com"),
            (9_000, "d.com"),
            (200_000, "e.com"),
        ];
        for (t, h) in events {
            sorted.insert(7, t, h);
        }
        // Deliver out of order (but no tick has closed, so all in bound).
        for i in [4usize, 1, 0, 2, 3] {
            let (t, h) = events[i];
            shuffled.insert(7, t, h);
        }
        let a = sorted.close_tick(MIN10);
        let b = shuffled.close_tick(MIN10);
        assert_eq!(a.len(), 1);
        assert_eq!(win(&a[0]), ["a.com", "b.com", "c.com", "d.com", "e.com"]);
        // Equal-time events keep arrival order *within* each feed; the two
        // feeds delivered b/c in the same relative order here, so the
        // timelines agree exactly.
        assert_eq!(a, b);
    }

    #[test]
    fn late_event_beyond_closed_boundary_is_dropped_and_counted() {
        let mut w = windower();
        w.insert(1, 100, "a.com");
        w.close_tick(MIN10);
        assert!(!w.insert(1, MIN10, "late.com"));
        assert!(!w.insert(1, 3, "very-late.com"));
        assert_eq!(w.late_dropped(), 2);
        // Just past the boundary is fine.
        assert!(w.insert(1, MIN10 + 1, "ok.com"));
    }

    #[test]
    fn tick_reports_only_fresh_anchors() {
        let mut w = windower();
        w.insert(1, 50_000, "a.com");
        assert_eq!(w.close_tick(MIN10).len(), 1);
        // No new activity: the next tick reports nothing for user 1.
        assert!(w.close_tick(2 * MIN10).is_empty());
        // Activity in the third interval reports again, window spanning
        // back over the quiet interval (T = 20 min > 2 intervals).
        w.insert(1, 2 * MIN10 + 5, "b.com");
        let closes = w.close_tick(3 * MIN10);
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].anchor, 2 * MIN10 + 5);
        assert_eq!(win(&closes[0]), ["a.com", "b.com"]);
    }

    #[test]
    fn eviction_keeps_exactly_what_future_windows_can_contain() {
        let mut w = IncrementalWindower::new(1000);
        w.insert(1, 100, "a.com");
        w.insert(1, 600, "b.com");
        w.insert(1, 1500, "c.com");
        let closes = w.close_tick(600);
        assert_eq!(win(&closes[0]), ["a.com", "b.com"]);
        // Eviction threshold is (600 + 1) - 1000 < 0: nothing evicted yet.
        assert_eq!(w.resident_events(), 3);
        let closes = w.close_tick(1200);
        // Anchor 1500 is past the boundary; anchor ≤ 1200 is 600 = prev →
        // nothing fresh.
        assert!(closes.is_empty());
        // Threshold (1200 + 1) - 1000 = 201: "a.com"@100 can no longer
        // appear in any window (future anchors > 1200 ⇒ windows > 200).
        assert_eq!(w.resident_events(), 2);
        let closes = w.close_tick(1800);
        assert_eq!(closes[0].anchor, 1500);
        assert_eq!(win(&closes[0]), ["b.com", "c.com"]);
    }

    #[test]
    fn epoch_touching_windows_keep_t_zero() {
        let mut w = IncrementalWindower::new(1000);
        w.insert(1, 0, "zero.com");
        w.insert(1, 1000, "t.com");
        let closes = w.close_tick(1000);
        // Window (0, 1000] with an epoch-touching start keeps t = 0.
        assert_eq!(win(&closes[0]), ["zero.com", "t.com"]);
    }

    /// Differential test: for random event streams and every 10-minute
    /// boundary, the windower's raw window (passed through `Session`
    /// dedup) must equal the oracle's naive `session_window` over the
    /// user's sorted timeline.
    #[test]
    fn windower_matches_oracle_naive_windowing_at_every_tick() {
        let t_window = 1_200_000u64;
        for seed in 0..20u64 {
            let mut state = splitmix64(seed.wrapping_add(0xfeed));
            let mut next = || {
                state = splitmix64(state);
                state
            };
            // Random in-order events for a handful of users over ~5 ticks.
            let mut events: Vec<(u64, u32, String)> = Vec::new();
            let mut t = 0u64;
            for _ in 0..200 {
                t += next() % 40_000;
                let user = (next() % 4) as u32;
                let host = format!("h{}.example", next() % 12);
                events.push((t, user, host));
            }
            let mut w = IncrementalWindower::new(t_window);
            let mut cursor = 0usize;
            let mut prev: Option<u64> = None;
            let last_t = events.last().unwrap().0;
            let mut boundary = MIN10;
            while boundary <= last_t + MIN10 {
                while cursor < events.len() && events[cursor].0 <= boundary {
                    let (t, u, ref h) = events[cursor];
                    w.insert(u, t, h);
                    cursor += 1;
                }
                let closes = w.close_tick(boundary);
                for c in &closes {
                    // Oracle: the user's full sorted timeline, naively
                    // windowed at the same anchor.
                    let timeline: Vec<(u64, String)> = events
                        .iter()
                        .filter(|(_, u, _)| *u == c.user)
                        .map(|(t, _, h)| (*t, h.clone()))
                        .collect();
                    let expect = hostprof_oracle_window(&timeline, c.anchor, t_window);
                    let got = Session::from_window(c.window.iter().map(String::as_str), None);
                    assert_eq!(
                        got.hostnames(),
                        expect.as_slice(),
                        "seed {seed} boundary {boundary} user {} anchor {}",
                        c.user,
                        c.anchor
                    );
                    // Anchor freshness: within (prev, boundary].
                    assert!(c.anchor <= boundary);
                    if let Some(p) = prev {
                        assert!(c.anchor > p);
                    }
                }
                prev = Some(boundary);
                boundary += MIN10;
            }
        }
    }

    /// A local re-statement of `oracle::window::session_window` (the oracle
    /// crate is a dev-only sibling; depending on it here would be a cycle).
    /// The root-level `tests/streaming_equivalence.rs` suite runs the real
    /// oracle against the full engine.
    fn hostprof_oracle_window(requests: &[(u64, String)], end: u64, dur: u64) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (t, h) in requests {
            let after_start = match end.checked_sub(dur) {
                None => true,
                Some(0) if dur > 0 => true,
                Some(start) => *t > start,
            };
            if after_start && *t <= end && !out.contains(h) {
                out.push(h.clone());
            }
        }
        out
    }

    // ---- engine-level tests (tiny synthetic embeddings) ----

    fn tiny_model() -> (EmbeddingSet, Ontology) {
        let hosts: Vec<String> = (0..8).map(|i| format!("h{i}.example")).collect();
        let vocab = Vocab::build(std::iter::once(hosts.iter().map(String::as_str)), 1, 0.0);
        let dim = 4usize;
        let mut state = 42u64;
        let vectors: Vec<f32> = (0..vocab.len() * dim)
            .map(|_| {
                state = splitmix64(state);
                ((state >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
            })
            .collect();
        let embeddings = EmbeddingSet::new(dim, vocab, vectors);
        let mut ontology = Ontology::new();
        for i in 0..4 {
            ontology.insert(
                &format!("h{i}.example"),
                CategoryVector::from_pairs(vec![(CategoryId(i as u16), 1.0)]),
            );
        }
        (embeddings, ontology)
    }

    fn tls_packet(t: u64, client_ip: u32, sport: u16, host: &str) -> Packet {
        Packet {
            t_ms: t,
            src: Endpoint::new(client_ip, sport),
            dst: Endpoint::new(0x0808_0808, 443),
            transport: Transport::Tcp,
            payload: bytes::Bytes::from(ClientHello::for_hostname(host).encode()),
        }
    }

    #[test]
    fn watermark_holds_ticks_until_lateness_passes() {
        let (embeddings, ontology) = tiny_model();
        let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
        let mut engine = ServeEngine::new(
            ServeConfig {
                lateness_ms: 5_000,
                ..ServeConfig::default()
            },
            BatchProfiler::new(profiler, 1),
            None,
        );
        let mut ticks = Vec::new();
        ticks.extend(engine.ingest_packet(&tls_packet(1_000, 1, 5000, "h1.example")));
        // The stream has reached the boundary but the watermark (t - 5s)
        // has not: the tick must hold.
        ticks.extend(engine.ingest_packet(&tls_packet(MIN10 + 100, 1, 5001, "h2.example")));
        assert!(ticks.is_empty(), "tick released before watermark passed");
        // An out-of-order arrival inside the margin still lands.
        ticks.extend(engine.ingest_packet(&tls_packet(MIN10 - 50, 1, 5002, "h3.example")));
        assert!(ticks.is_empty());
        // Watermark passes the boundary: the tick fires and contains the
        // late arrival.
        ticks.extend(engine.ingest_packet(&tls_packet(MIN10 + 5_001, 1, 5003, "h4.example")));
        assert_eq!(ticks.len(), 1);
        assert_eq!(ticks[0].boundary, MIN10);
        assert_eq!(ticks[0].entries.len(), 1);
        assert_eq!(ticks[0].entries[0].anchor, MIN10 - 50);
        assert!(ticks[0].entries[0].profile.is_some());
        // Flush covers the tail.
        let rest = engine.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].entries[0].anchor, MIN10 + 5_001);
    }

    #[test]
    fn lane_count_does_not_change_results() {
        let (embeddings, ontology) = tiny_model();
        let packets: Vec<Packet> = (0..300u64)
            .map(|i| {
                tls_packet(
                    i * 7_001,
                    1 + (i % 5) as u32,
                    (4000 + i) as u16,
                    &format!("h{}.example", i % 8),
                )
            })
            .collect();
        let run = |lanes: usize| {
            let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
            let mut engine = ServeEngine::new(
                ServeConfig {
                    lanes,
                    ..ServeConfig::default()
                },
                BatchProfiler::new(profiler, 1),
                None,
            );
            let mut ticks = Vec::new();
            for p in &packets {
                ticks.extend(engine.ingest_packet(p));
            }
            ticks.extend(engine.flush());
            ticks
                .iter()
                .flat_map(|t| {
                    t.entries.iter().map(move |e| {
                        let bits: Vec<Vec<u32>> = e
                            .profile
                            .as_ref()
                            .map(|p| vec![p.session_vector.iter().map(|v| v.to_bits()).collect()])
                            .unwrap_or_default();
                        (t.boundary, e.user, e.anchor, bits)
                    })
                })
                .collect::<Vec<_>>()
        };
        let one = run(1);
        assert!(!one.is_empty());
        assert_eq!(one, run(4));
        assert_eq!(one, run(3));
    }

    #[test]
    fn merged_lane_taxonomy_invariant_holds_in_the_serving_loop() {
        let (embeddings, ontology) = tiny_model();
        let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
        let mut engine = ServeEngine::new(
            ServeConfig {
                lanes: 4,
                ..ServeConfig::default()
            },
            BatchProfiler::new(profiler, 1),
            None,
        );
        // Mix of valid handshakes and garbage across many clients, so
        // several lanes accumulate *different* error taxonomies.
        for i in 0..64u64 {
            let ip = 1 + (i % 16) as u32;
            if i % 3 == 0 {
                let mut pkt = tls_packet(i * 10, ip, (6000 + i) as u16, "ignored");
                pkt.payload = bytes::Bytes::from_static(b"GET / HTTP/1.1\r\n");
                engine.ingest_packet(&pkt);
            } else {
                engine.ingest_packet(&tls_packet(
                    i * 10,
                    ip,
                    (6000 + i) as u16,
                    &format!("h{}.example", i % 8),
                ));
            }
        }
        let merged = engine.observer_stats();
        assert!(merged.parse_errors > 0, "garbage must register");
        assert_eq!(
            merged.taxonomy_total(),
            merged.parse_errors,
            "taxonomy invariant must survive the per-lane merge"
        );
        assert_eq!(merged.packets, 64);
        assert_eq!(engine.flow_stats().packets, 64);
        // At least two lanes actually saw traffic (the merge is real).
        let active = (0..16u32)
            .map(|ip| engine.lane_of(1 + ip))
            .collect::<std::collections::HashSet<_>>();
        assert!(active.len() > 1);
    }

    #[test]
    fn versioned_engine_switches_models_between_ticks() {
        use crate::versioned::{ModelVersion, VersionedModel};
        use std::sync::Arc;

        let (embeddings, ontology) = tiny_model();
        let ontology = Arc::new(ontology);
        let model = VersionedModel::new(ModelVersion::build(
            1,
            embeddings.clone(),
            Arc::clone(&ontology),
            ProfilerConfig::default(),
        ));
        let mut engine = ServeEngine::with_versioned(ServeConfig::default(), &model, 1, None);
        engine.ingest_packet(&tls_packet(1_000, 1, 5000, "h1.example"));
        let first = engine.ingest_packet(&tls_packet(MIN10 + 3_000, 1, 5001, "h2.example"));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].model_seq, 1, "first tick serves version 1");

        // Hot swap between ticks: the next tick must profile against v2.
        model.publish(ModelVersion::build(
            2,
            embeddings.clone(),
            Arc::clone(&ontology),
            ProfilerConfig::default(),
        ));
        engine.ingest_packet(&tls_packet(2 * MIN10 + 100, 1, 5002, "h3.example"));
        let rest = engine.flush();
        assert!(!rest.is_empty());
        assert!(rest.iter().all(|t| t.model_seq == 2));
        assert!(rest
            .iter()
            .all(|t| t.entries.iter().any(|e| e.profile.is_some())));
    }

    #[test]
    fn versioned_engine_with_identical_model_matches_the_fixed_engine() {
        use crate::versioned::{ModelVersion, VersionedModel};
        use std::sync::Arc;

        let (embeddings, ontology) = tiny_model();
        let packets: Vec<Packet> = (0..120u64)
            .map(|i| {
                tls_packet(
                    i * 9_007,
                    1 + (i % 3) as u32,
                    (4000 + i) as u16,
                    &format!("h{}.example", i % 8),
                )
            })
            .collect();
        let fp = |ticks: &[TickReport]| {
            ticks
                .iter()
                .flat_map(|t| {
                    t.entries.iter().map(move |e| {
                        let bits: Vec<u32> = e
                            .profile
                            .as_ref()
                            .map(|p| p.session_vector.iter().map(|v| v.to_bits()).collect())
                            .unwrap_or_default();
                        (t.boundary, e.user, e.anchor, bits)
                    })
                })
                .collect::<Vec<_>>()
        };

        let fixed = {
            let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
            let mut engine = ServeEngine::new(
                ServeConfig::default(),
                BatchProfiler::new(profiler, 1),
                None,
            );
            let mut ticks = Vec::new();
            for p in &packets {
                ticks.extend(engine.ingest_packet(p));
            }
            ticks.extend(engine.flush());
            assert!(ticks.iter().all(|t| t.model_seq == 0));
            fp(&ticks)
        };
        let versioned = {
            let ont = Arc::new(ontology.clone());
            let model = VersionedModel::new(ModelVersion::build(
                7,
                embeddings.clone(),
                ont,
                ProfilerConfig::default(),
            ));
            let mut engine = ServeEngine::with_versioned(ServeConfig::default(), &model, 1, None);
            let mut ticks = Vec::new();
            for p in &packets {
                ticks.extend(engine.ingest_packet(p));
            }
            ticks.extend(engine.flush());
            assert!(ticks.iter().all(|t| t.model_seq == 7));
            fp(&ticks)
        };
        assert!(!fixed.is_empty());
        assert_eq!(fixed, versioned, "same weights, same profiles, bit for bit");
    }

    #[test]
    fn collect_windows_harvests_the_update_corpus_in_tick_order() {
        let (embeddings, ontology) = tiny_model();
        let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
        let mut engine = ServeEngine::new(
            ServeConfig {
                collect_windows: true,
                ..ServeConfig::default()
            },
            BatchProfiler::new(profiler, 1),
            None,
        );
        engine.ingest_packet(&tls_packet(100, 2, 5000, "h0.example"));
        engine.ingest_packet(&tls_packet(200, 1, 5001, "h1.example"));
        engine.ingest_packet(&tls_packet(MIN10 + 500, 1, 5002, "h2.example"));
        engine.flush();
        let windows = engine.take_closed_windows();
        // Tick 1 reports users 1 and 2 (ascending), tick 2 reports user 1.
        assert_eq!(windows.len(), 3);
        assert_eq!((windows[0].user, windows[0].anchor), (1, 200));
        assert_eq!((windows[1].user, windows[1].anchor), (2, 100));
        assert_eq!(windows[2].user, 1);
        assert_eq!(
            windows[2].window,
            vec!["h1.example".to_string(), "h2.example".to_string()],
            "raw window keeps the pre-boundary event inside T"
        );
        // Drained: a second take is empty.
        assert!(engine.take_closed_windows().is_empty());
    }

    #[test]
    fn idle_gap_fast_forwards_the_scheduler() {
        let (embeddings, ontology) = tiny_model();
        let profiler = Profiler::new(&embeddings, &ontology, ProfilerConfig::default());
        let mut engine = ServeEngine::new(
            ServeConfig::default(),
            BatchProfiler::new(profiler, 1),
            None,
        );
        engine.ingest_packet(&tls_packet(100, 1, 5000, "h0.example"));
        // A huge time gap: the scheduler must not spin one tick at a time.
        let ticks = engine.ingest_packet(&tls_packet(3_000_000_000, 1, 5001, "h1.example"));
        // The first interval's activity is reported; the empty boundaries
        // in the gap are skipped.
        assert_eq!(ticks.len(), 1);
        assert_eq!(ticks[0].entries[0].anchor, 100);
        let stats = engine.stats();
        assert!(
            stats.ticks < 100,
            "scheduler fired {} ticks across the gap",
            stats.ticks
        );
    }
}
