//! A minimal capture file format ("hpcap").
//!
//! Real observer deployments record traffic and analyze it offline; this
//! module gives the substrate the same workflow: serialize a packet stream
//! to a compact length-prefixed binary format and replay it later (e.g.
//! `hostprof observe` → save → re-analyze under different settings without
//! regenerating the world).
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! file   := magic "HPC1" , record*
//! record := t_ms u64 · src_ip u32 · src_port u16 · dst_ip u32 ·
//!           dst_port u16 · transport u8 (0=TCP 1=UDP) ·
//!           payload_len u32 · payload bytes
//! ```

use crate::error::ParseError;
use crate::packet::{Endpoint, Packet, Transport};
use bytes::Bytes;
use std::io::{self, Read, Write};

/// File magic: "HPC1".
pub const MAGIC: [u8; 4] = *b"HPC1";
/// Upper bound on a single payload, to bound memory on corrupt files.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Errors when reading a capture.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file.
    Format(ParseError),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture I/O error: {e}"),
            CaptureError::Format(e) => write!(f, "capture format error: {e}"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Write a packet stream as an hpcap capture.
#[derive(Debug)]
pub struct CaptureWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> CaptureWriter<W> {
    /// Start a capture (writes the magic immediately).
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        Ok(Self { out, packets: 0 })
    }

    /// Append one packet.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let mut head = [0u8; 25];
        head[..8].copy_from_slice(&pkt.t_ms.to_be_bytes());
        head[8..12].copy_from_slice(&pkt.src.ip.to_be_bytes());
        head[12..14].copy_from_slice(&pkt.src.port.to_be_bytes());
        head[14..18].copy_from_slice(&pkt.dst.ip.to_be_bytes());
        head[18..20].copy_from_slice(&pkt.dst.port.to_be_bytes());
        head[20] = match pkt.transport {
            Transport::Tcp => 0,
            Transport::Udp => 1,
        };
        head[21..25].copy_from_slice(&(pkt.payload.len() as u32).to_be_bytes());
        self.out.write_all(&head)?;
        self.out.write_all(&pkt.payload)?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Iterate packets out of an hpcap capture.
#[derive(Debug)]
pub struct CaptureReader<R: Read> {
    input: R,
}

impl<R: Read> CaptureReader<R> {
    /// Open a capture (validates the magic).
    pub fn new(mut input: R) -> Result<Self, CaptureError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(CaptureError::Format(ParseError::WrongType));
        }
        Ok(Self { input })
    }

    /// Read the next packet; `Ok(None)` at clean end-of-file.
    pub fn read_packet(&mut self) -> Result<Option<Packet>, CaptureError> {
        let mut head = [0u8; 25];
        match self.input.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Distinguish clean EOF (no bytes at all) from a torn
                // record: read_exact with UnexpectedEof may have consumed
                // a partial header, but either way the stream is over; a
                // partial header is a format error only if any byte was
                // present. std gives no count, so treat EOF as clean end —
                // torn tails are dropped, like tcpdump does.
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        let t_ms = u64::from_be_bytes(head[..8].try_into().expect("8 bytes"));
        let src = Endpoint::new(
            u32::from_be_bytes(head[8..12].try_into().expect("4 bytes")),
            u16::from_be_bytes(head[12..14].try_into().expect("2 bytes")),
        );
        let dst = Endpoint::new(
            u32::from_be_bytes(head[14..18].try_into().expect("4 bytes")),
            u16::from_be_bytes(head[18..20].try_into().expect("2 bytes")),
        );
        let transport = match head[20] {
            0 => Transport::Tcp,
            1 => Transport::Udp,
            _ => return Err(CaptureError::Format(ParseError::WrongType)),
        };
        let len = u32::from_be_bytes(head[21..25].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(CaptureError::Format(ParseError::BadLength));
        }
        let mut payload = vec![0u8; len as usize];
        self.input.read_exact(&mut payload)?;
        Ok(Some(Packet {
            t_ms,
            src,
            dst,
            transport,
            payload: Bytes::from(payload),
        }))
    }

    /// Drain the whole capture into memory.
    pub fn read_all(mut self) -> Result<Vec<Packet>, CaptureError> {
        let mut out = Vec::new();
        while let Some(pkt) = self.read_packet()? {
            out.push(pkt);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::ClientHello;

    fn sample_packets() -> Vec<Packet> {
        (0..10u32)
            .map(|i| Packet {
                t_ms: i as u64 * 100,
                src: Endpoint::new(0x0a00_0000 + i, 40_000 + i as u16),
                dst: Endpoint::new(0x5000_0001, 443),
                transport: if i % 3 == 0 {
                    Transport::Udp
                } else {
                    Transport::Tcp
                },
                payload: Bytes::from(
                    ClientHello::for_hostname(&format!("h{i}.example.com")).encode(),
                ),
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_packet() {
        let packets = sample_packets();
        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.packets(), 10);
        let bytes = w.finish().unwrap();
        let back = CaptureReader::new(&bytes[..]).unwrap().read_all().unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = CaptureReader::new(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CaptureError::Format(ParseError::WrongType)));
        assert!(CaptureReader::new(&b"HP"[..]).is_err(), "short file");
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let packets = sample_packets();
        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        for p in &packets[..3] {
            w.write_packet(p).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 5); // cut into the last payload...
        let reader = CaptureReader::new(&bytes[..]).unwrap();
        // The torn record surfaces as an I/O error mid-payload.
        let result = reader.read_all();
        assert!(result.is_err() || result.unwrap().len() == 2);
    }

    #[test]
    fn oversized_payload_declaration_is_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[0u8; 21]); // t, ips, ports, transport=0
        bytes.extend_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        let mut r = CaptureReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.read_packet(),
            Err(CaptureError::Format(ParseError::BadLength))
        ));
    }

    #[test]
    fn every_prefix_of_a_valid_capture_is_absorbed() {
        let packets = sample_packets();
        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        let full = w.finish().unwrap();
        // Exhaustive: every possible truncation point of the file. Records
        // decoded before the cut must be byte-identical to what was
        // written; the cut itself yields Ok(None) or a typed error, and
        // never a panic or a phantom packet.
        for cut in 0..full.len() {
            match CaptureReader::new(&full[..cut]) {
                Err(_) => assert!(cut < MAGIC.len() + 4, "magic was intact at {cut}"),
                Ok(mut r) => {
                    let mut decoded = 0usize;
                    while let Ok(Some(pkt)) = r.read_packet() {
                        assert_eq!(pkt, packets[decoded], "prefix {cut}");
                        decoded += 1;
                    }
                    assert!(decoded <= packets.len());
                }
            }
        }
    }

    #[test]
    fn zero_length_payload_records_roundtrip() {
        // Regression: a record with payload_len == 0 (a pure-ACK segment)
        // must round-trip and must not be confused with end-of-file by the
        // reader, even when it is the last record.
        let empty = Packet {
            t_ms: 7,
            src: Endpoint::new(0x0a00_0001, 40_000),
            dst: Endpoint::new(0x5000_0001, 443),
            transport: Transport::Tcp,
            payload: Bytes::new(),
        };
        let follow = Packet {
            t_ms: 8,
            payload: Bytes::from_static(b"later"),
            ..empty.clone()
        };
        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        w.write_packet(&empty).unwrap();
        w.write_packet(&follow).unwrap();
        w.write_packet(&empty).unwrap();
        let bytes = w.finish().unwrap();
        let back = CaptureReader::new(&bytes[..]).unwrap().read_all().unwrap();
        assert_eq!(back, vec![empty.clone(), follow, empty]);
    }

    #[test]
    fn replay_feeds_the_observer_identically() {
        use crate::observer::SniObserver;
        let packets = sample_packets();
        let mut live = SniObserver::new();
        live.process_stream(&packets);

        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let replayed = CaptureReader::new(&bytes[..]).unwrap().read_all().unwrap();
        let mut offline = SniObserver::new();
        offline.process_stream(&replayed);

        assert_eq!(live.observations(), offline.observations());
        assert_eq!(live.stats(), offline.stats());
    }
}
