//! Offline in-tree subset of the `crossbeam` crate.
//!
//! Only the scoped-thread API the workspace uses is provided. Since Rust
//! 1.63, `std::thread::scope` offers the same borrow-the-stack guarantee
//! crossbeam pioneered, so this shim adapts the crossbeam call shape
//! (`scope(|s| { s.spawn(|_| …) }) -> Result<R>`) onto the std primitive.

pub mod thread {
    /// Scope handle passed to the `scope` closure; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// workers can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            // `&std::thread::Scope` is Copy and valid for the whole
            // 'scope region, so a fresh wrapper can be rebuilt inside the
            // spawned thread rather than borrowing this stack frame.
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-stack threads can be
    /// spawned; every spawned thread is joined before `scope` returns.
    /// std propagates child panics on the implicit join, so the `Err`
    /// branch is never actually produced — callers' `.expect(…)` is kept
    /// satisfied for crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'s, 't> FnOnce(&'t Scope<'s, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        crate::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    sums.lock().unwrap().push(sum);
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
