//! Offline in-tree implementation of `rand_chacha`'s [`ChaCha8Rng`].
//!
//! Implements the real ChaCha stream cipher (IETF variant, 8 rounds) with
//! the same buffering discipline as `rand_core::block::BlockRng` (four
//! 64-byte blocks per refill, the same `next_u64` split behaviour at the
//! buffer boundary), so seeded streams are interchangeable with the real
//! `rand_chacha 0.3` crate.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// rand_chacha generates 4 blocks per refill.
const BUF_BLOCKS: usize = 4;
const BUF_WORDS: usize = BLOCK_WORDS * BUF_BLOCKS;

/// ChaCha with 8 rounds, keyed by a 32-byte seed, 64-bit block counter and
/// 64-bit stream id (zero by default, like `rand_chacha`).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    stream: [u32; 2],
    /// Block counter of the *next* refill.
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The stream id (always 0 unless set); exposed for parity with the
    /// real crate.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = [stream as u32, (stream >> 32) as u32];
        // Restart output from the current counter position.
        self.index = BUF_WORDS;
    }

    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream[0],
            self.stream[1],
        ];
        let initial = state;
        for _ in 0..4 {
            // Double round: columns then diagonals.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    fn refill(&mut self) {
        for b in 0..BUF_BLOCKS {
            let counter = self.counter.wrapping_add(b as u64);
            let (lo, hi) = (b * BLOCK_WORDS, (b + 1) * BLOCK_WORDS);
            let mut out = [0u32; BLOCK_WORDS];
            self.block(counter, &mut out);
            self.buf[lo..hi].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(BUF_BLOCKS as u64);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            stream: [0, 0],
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core::block::BlockRng::next_u64, including the
        // boundary case that stitches the last word of one buffer to the
        // first word of the next.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439-style known-answer check of the ChaCha block function,
    /// reduced to structural properties we can verify offline: the first
    /// block of the all-zero key differs from the second, streams are
    /// reproducible, and the counter advances.
    #[test]
    fn streams_are_deterministic_and_advance() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..200).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..200).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn words_are_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 16.0).abs() < 0.2, "mean bits {mean_bits}");
    }

    #[test]
    fn mixed_width_reads_follow_block_rng_discipline() {
        // Drain an odd number of u32s so a u64 read straddles the buffer
        // boundary, then check the stitched value matches the raw stream.
        let mut raw = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..130).map(|_| raw.next_u32()).collect();

        let mut mixed = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..63 {
            mixed.next_u32();
        }
        let straddle = mixed.next_u64();
        assert_eq!(straddle & 0xffff_ffff, u64::from(words[63]));
        assert_eq!(straddle >> 32, u64::from(words[64]));
    }
}
