//! Naive session extraction (§4.1): "the sequence of hosts visited by
//! user u in the last window of length T", first visit only, with
//! blocklisted trackers removed.
//!
//! The production path composes `Trace::window` (binary search over a
//! sorted per-user timeline) with `Session::from_window` (HashSet dedup).
//! The oracle is a single linear scan over `(t_ms, hostname)` pairs with
//! an O(n²) `Vec::contains` dedup — obviously correct, order-preserving.

/// Hosts visited by one user in the half-open window `(end - T, end]`,
/// lowercased, blocklist-filtered, first visit only.
///
/// Boundary semantics match the paper's "last window of length T"
/// anchored at the final observed request: the window *includes* its end
/// instant and *excludes* its start instant, except that a window whose
/// start would fall at or before the epoch keeps everything from t = 0.
pub fn session_window(
    requests: &[(u64, String)],
    end_ms: u64,
    duration_ms: u64,
    blocked: &dyn Fn(&str) -> bool,
) -> Vec<String> {
    let mut session: Vec<String> = Vec::new();
    for (t, host) in requests {
        let after_start = match end_ms.checked_sub(duration_ms) {
            // Window reaches past the epoch: nothing to cut on the left.
            None => true,
            // Start exactly at the epoch: the first request (t = 0)
            // still belongs to the window.
            Some(0) if duration_ms > 0 => true,
            Some(start) => *t > start,
        };
        if !(after_start && *t <= end_ms) {
            continue;
        }
        let lower = host.to_ascii_lowercase();
        if blocked(&lower) {
            continue;
        }
        if !session.contains(&lower) {
            session.push(lower);
        }
    }
    session
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(ts: &[(u64, &str)]) -> Vec<(u64, String)> {
        ts.iter().map(|&(t, h)| (t, h.to_string())).collect()
    }

    #[test]
    fn window_is_half_open_and_deduped() {
        let r = reqs(&[
            (100, "A.example"),
            (500, "b.example"),
            (900, "a.example"),
            (1000, "c.example"),
            (1001, "d.example"),
        ]);
        // Window (100, 1000]: excludes t=100, includes t=1000.
        let s = session_window(&r, 1000, 900, &|_| false);
        assert_eq!(s, ["b.example", "a.example", "c.example"]);
    }

    #[test]
    fn epoch_touching_window_keeps_t_zero() {
        let r = reqs(&[(0, "first.example"), (5, "next.example")]);
        assert_eq!(
            session_window(&r, 10, 10, &|_| false),
            ["first.example", "next.example"]
        );
        // Duration larger than end: same, everything kept.
        assert_eq!(session_window(&r, 10, 99, &|_| false).len(), 2);
    }

    #[test]
    fn blocklist_filters_before_dedup() {
        let r = reqs(&[(1, "ads.example"), (2, "site.example"), (3, "ads.example")]);
        let s = session_window(&r, 3, 10, &|h| h.starts_with("ads."));
        assert_eq!(s, ["site.example"]);
    }
}
