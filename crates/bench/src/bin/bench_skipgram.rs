//! SKIPGRAM training-engine benchmark: tokens/second across the
//! {threads} × {scalar, simd} grid, the single-thread kernel speedup, and
//! static-vs-balanced sharding on a skewed corpus.
//!
//! Thread-scaling wall-clock numbers are only meaningful on hardware with
//! that many cores, so alongside the measured rates the sharding section
//! reports a *deterministic token-makespan simulation* of both schedules
//! (reproducing the trainer's chunk boundaries via
//! [`hostprof_embed::balanced_chunk_ranges`]) — the schedule quality is a
//! property of the chunking, not of the machine the bench ran on.
//!
//! Writes `results/bench_skipgram.json`.

use hostprof_bench::{header, row, write_results_stamped, Scale};
use hostprof_embed::{balanced_chunk_ranges, KernelChoice, SkipGram, SkipGramConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// A topical corpus: `topics` topics × 50 hostnames, sessions stay on
/// topic — the same shape the Criterion micro-bench uses.
fn corpus(sequences: usize, topics: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..sequences)
        .map(|_| {
            let topic = rng.gen_range(0..topics);
            let len = rng.gen_range(5..20);
            (0..len)
                .map(|_| format!("t{topic}-host{}.com", rng.gen_range(0..50)))
                .collect()
        })
        .collect()
}

/// A skewed corpus shaped like the observer's real training input:
/// day-ordered per-user sequences (`user = i % 100`), with user 0 a power
/// user whose daily sequence is ~100× longer. Because the user count is a
/// multiple of the worker counts we sweep, static `skip(tid).step_by(n)`
/// sharding pins *every* one of the power user's sequences to the same
/// worker, day after day — the pathology balanced chunking exists to fix.
fn skewed_corpus(sequences: usize) -> Vec<Vec<String>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..sequences)
        .map(|i| {
            let topic = rng.gen_range(0..40);
            let len = if i % 100 == 0 {
                rng.gen_range(500..900)
            } else {
                rng.gen_range(4..12)
            };
            (0..len)
                .map(|_| format!("t{topic}-host{}.com", rng.gen_range(0..50)))
                .collect()
        })
        .collect()
}

/// Train `repeats` times, keep the best (highest) tokens/sec.
fn best_rate(data: &[Vec<String>], cfg: &SkipGramConfig, repeats: usize) -> f64 {
    let mut best = 0f64;
    for _ in 0..repeats {
        let model = SkipGram::train(data, cfg).expect("trainable corpus");
        let st = model.train_stats();
        assert_eq!(
            st.processed_tokens, st.planned_tokens,
            "LR schedule must see every token"
        );
        best = best.max(st.tokens_per_sec());
    }
    best
}

/// Token makespan of static round-robin sharding: worker `w` owns every
/// `threads`-th sequence, so its cost is the sum of those token counts and
/// the epoch's critical path is the largest share.
fn static_makespan(lens: &[usize], threads: usize) -> usize {
    (0..threads)
        .map(|w| lens.iter().skip(w).step_by(threads).sum())
        .max()
        .unwrap_or(0)
}

/// Token makespan of balanced chunking under greedy list scheduling: idle
/// workers claim chunks in cursor order, exactly like the trainer's atomic
/// work-stealing cursor.
fn balanced_makespan(lens: &[usize], threads: usize) -> usize {
    let chunks = balanced_chunk_ranges(lens, threads);
    let mut worker_load = vec![0usize; threads];
    for r in chunks {
        let cost: usize = lens[r].iter().sum();
        let w = (0..threads)
            .min_by_key(|&w| worker_load[w])
            .expect("threads > 0");
        worker_load[w] += cost;
    }
    worker_load.into_iter().max().unwrap_or(0)
}

#[derive(Serialize)]
struct ThroughputRow {
    threads: usize,
    kernel: String,
    tokens_per_sec: f64,
    speedup_vs_scalar_1t: f64,
}

#[derive(Serialize)]
struct ShardingResults {
    skewed_sequences: usize,
    skewed_tokens: usize,
    threads: usize,
    /// Critical-path token counts from the deterministic schedule
    /// simulation (machine-independent).
    static_makespan_tokens: usize,
    balanced_makespan_tokens: usize,
    /// `static / balanced` — > 1 means balanced wins.
    simulated_balance_ratio: f64,
    /// Measured wall-clock rates; on few-core hardware these mostly track
    /// the kernel, not the schedule.
    measured_static_tokens_per_sec: f64,
    measured_balanced_tokens_per_sec: f64,
}

#[derive(Serialize)]
struct BenchSkipgramResults {
    scale: String,
    hardware_threads: usize,
    avx2_fma: bool,
    sequences: usize,
    tokens: usize,
    dim: usize,
    throughput: Vec<ThroughputRow>,
    single_thread_kernel_speedup: f64,
    sharding: ShardingResults,
}

fn main() {
    let scale = Scale::from_env();
    // Best-of-N wall clock: the training runs are short, so generous
    // repeat counts cost little and squeeze out scheduler noise.
    let (sequences, repeats) = match scale {
        Scale::Tiny => (400, 3),
        Scale::Small => (2000, 7),
        Scale::Default => (8000, 5),
        Scale::Large => (20_000, 3),
    };
    let data = corpus(sequences, 40, 99);
    let tokens: usize = data.iter().map(Vec::len).sum();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    header("skipgram training throughput (tokens/sec)");
    row("scale", scale.label());
    row("hardware threads", hardware);
    row(
        "avx2+fma",
        if hostprof_embed::simd::simd_accelerated() {
            "yes"
        } else {
            "no (portable fallback)"
        },
    );
    row("sequences", sequences);
    row("tokens", tokens);

    let base = SkipGramConfig {
        dim: 100,
        epochs: 1,
        subsample: 0.0,
        ..SkipGramConfig::default()
    };

    let mut throughput = Vec::new();
    let mut scalar_1t = 0f64;
    let mut simd_1t = 0f64;
    for threads in [1usize, 4, 8] {
        for (kname, kernel) in [
            ("scalar", KernelChoice::Scalar),
            ("simd", KernelChoice::Simd),
        ] {
            let cfg = SkipGramConfig {
                threads,
                kernel,
                ..base.clone()
            };
            let rate = best_rate(&data, &cfg, repeats);
            if threads == 1 {
                match kernel {
                    KernelChoice::Scalar => scalar_1t = rate,
                    KernelChoice::Simd => simd_1t = rate,
                    KernelChoice::Auto => {}
                }
            }
            let speedup = if scalar_1t > 0.0 {
                rate / scalar_1t
            } else {
                0.0
            };
            row(
                format!("t={threads} kernel={kname}").as_str(),
                format!("{rate:.0} tok/s  ({speedup:.2}x)"),
            );
            throughput.push(ThroughputRow {
                threads,
                kernel: kname.to_string(),
                tokens_per_sec: rate,
                speedup_vs_scalar_1t: speedup,
            });
        }
    }
    let kernel_speedup = if scalar_1t > 0.0 {
        simd_1t / scalar_1t
    } else {
        0.0
    };
    row(
        "single-thread kernel speedup (simd/scalar)",
        format!("{kernel_speedup:.2}x"),
    );

    header("sharding on a skewed corpus (4 threads)");
    let skewed = skewed_corpus(sequences.max(800));
    let lens: Vec<usize> = skewed.iter().map(Vec::len).collect();
    let skewed_tokens: usize = lens.iter().sum();
    let threads = 4usize;
    let stat_ms = static_makespan(&lens, threads);
    let bal_ms = balanced_makespan(&lens, threads);
    let ratio = stat_ms as f64 / bal_ms.max(1) as f64;
    row("skewed sequences", skewed.len());
    row("skewed tokens", skewed_tokens);
    row("static makespan (simulated tokens)", stat_ms);
    row("balanced makespan (simulated tokens)", bal_ms);
    row(
        "simulated balance ratio (static/balanced)",
        format!("{ratio:.2}x"),
    );

    let sharded = |sharding| {
        let cfg = SkipGramConfig {
            threads,
            sharding,
            ..base.clone()
        };
        best_rate(&skewed, &cfg, repeats)
    };
    let static_rate = sharded(hostprof_embed::Sharding::Static);
    let balanced_rate = sharded(hostprof_embed::Sharding::Balanced);
    row("measured static", format!("{static_rate:.0} tok/s"));
    row("measured balanced", format!("{balanced_rate:.0} tok/s"));

    let headline = format!("{tokens} tokens, {kernel_speedup:.2}x single-thread kernel speedup");
    write_results_stamped(
        "bench_skipgram",
        &BenchSkipgramResults {
            scale: scale.label().to_string(),
            hardware_threads: hardware,
            avx2_fma: hostprof_embed::simd::simd_accelerated(),
            sequences,
            tokens,
            dim: base.dim,
            throughput,
            single_thread_kernel_speedup: kernel_speedup,
            sharding: ShardingResults {
                skewed_sequences: skewed.len(),
                skewed_tokens,
                threads,
                static_makespan_tokens: stat_ms,
                balanced_makespan_tokens: bal_ms,
                simulated_balance_ratio: ratio,
                measured_static_tokens_per_sec: static_rate,
                measured_balanced_tokens_per_sec: balanced_rate,
            },
        },
        &headline,
    );
}
