//! ANN recall-vs-latency sweep: IVF-flat against the exact tiled scan on
//! a synthetic million-hostname vocabulary.
//!
//! The paper's profiler runs an exact O(V) cosine scan per session
//! (Eq. 3's N nearest labeled neighbors). That is fine at the paper's
//! ~100k-hostname vocabulary but not at a deployment-scale one, so
//! `hostprof-embed` grows an IVF-flat index behind the same `NnIndex`
//! trait. This bench quantifies the trade the index makes: for each
//! `nprobe` in a power-of-two sweep up to `nlists`, measure recall@k
//! against exact ground truth and the per-query latency distribution.
//! At `nprobe == nlists` the index is exhaustive and bit-identical to
//! the exact scan, so the last sweep row doubles as a conformance check
//! (`--smoke` runs the tiny scale for CI regardless of `HOSTPROF_SCALE`).
//!
//! The vocabulary is a seeded mixture model: rows are drawn around
//! `3 * nlists` jittered centers so the coarse quantizer has real
//! structure to find but cluster boundaries overlap (as hostname
//! embeddings do), keeping recall at small `nprobe` honestly below 1.
//!
//! Writes `results/bench_knn.json`.

use hostprof_bench::{header, row, write_results_stamped, Scale};
use hostprof_embed::{EmbeddingSet, ExactScan, IvfFlat, IvfParams, KnnScratch, Vocab};
use serde::Serialize;
use std::time::Instant;

const K: usize = 1000;
const RECALL_TARGET: f64 = 0.95;
const SPEEDUP_TARGET: f64 = 10.0;

#[derive(Serialize)]
struct SweepRow {
    nprobe: usize,
    recall_at_k: f64,
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
    speedup_vs_exact: f64,
}

#[derive(Serialize)]
struct LatencySummary {
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
    queries_per_sec: f64,
}

#[derive(Serialize)]
struct BenchKnnResults {
    scale: String,
    rows: usize,
    dim: usize,
    k: usize,
    nlists: usize,
    queries: usize,
    build_seconds: f64,
    recall_target: f64,
    speedup_target: f64,
    /// True when some swept nprobe met both targets simultaneously.
    target_met: bool,
    exact: LatencySummary,
    sweep: Vec<SweepRow>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f32(state: &mut u64) -> f32 {
    (splitmix64(state) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
}

/// Seeded mixture-model vocabulary: `rows` vectors around `clusters`
/// jittered centers. Noise is large enough that clusters overlap.
fn synthetic_set(rows: usize, dim: usize, clusters: usize, seed: u64) -> EmbeddingSet {
    let mut rng = seed;
    let mut centers = Vec::with_capacity(clusters * dim);
    for _ in 0..clusters * dim {
        centers.push(unit_f32(&mut rng));
    }
    let mut vectors = Vec::with_capacity(rows * dim);
    for _ in 0..rows {
        let c = (splitmix64(&mut rng) as usize) % clusters;
        for d in 0..dim {
            vectors.push(centers[c * dim + d] + unit_f32(&mut rng) * 0.45);
        }
    }
    let names: Vec<String> = (0..rows).map(|i| format!("h{i}.example")).collect();
    let vocab = Vocab::build([names.iter().map(String::as_str)], 1, 0.0);
    EmbeddingSet::new(dim, vocab, vectors)
}

/// In-distribution queries: perturbed copies of random vocabulary rows
/// (session vectors are means of rows, so they live near the data).
fn queries(set: &EmbeddingSet, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = seed;
    (0..n)
        .map(|_| {
            let r = (splitmix64(&mut rng) as usize) % set.len();
            set.vector_by_index(r as u32)
                .iter()
                .map(|&x| x + unit_f32(&mut rng) * 0.2)
                .collect()
        })
        .collect()
}

/// Per-query best-of-`reps` latencies (seconds) plus the final results.
fn measure<F: FnMut(&[f32]) -> Vec<(u32, f32)>>(
    qs: &[Vec<f32>],
    reps: usize,
    mut search: F,
) -> (Vec<f64>, Vec<Vec<(u32, f32)>>) {
    let mut lat = Vec::with_capacity(qs.len());
    let mut out = Vec::with_capacity(qs.len());
    for q in qs {
        let mut best = f64::INFINITY;
        let mut res = Vec::new();
        for _ in 0..reps {
            let t = Instant::now();
            res = search(q);
            best = best.min(t.elapsed().as_secs_f64());
        }
        lat.push(best);
        out.push(res);
    }
    (lat, out)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let i = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[i]
}

fn summarize(lat: &[f64]) -> LatencySummary {
    let mut sorted = lat.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    LatencySummary {
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p95_ms: percentile(&sorted, 0.95) * 1e3,
        mean_ms: mean * 1e3,
        queries_per_sec: 1.0 / mean,
    }
}

fn recall(truth: &[Vec<u32>], got: &[Vec<(u32, f32)>]) -> f64 {
    let mut sum = 0.0;
    for (t, g) in truth.iter().zip(got) {
        let hits = g
            .iter()
            .filter(|(id, _)| t.binary_search(id).is_ok())
            .count();
        sum += hits as f64 / t.len().max(1) as f64;
    }
    sum / truth.len().max(1) as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Tiny
    } else {
        Scale::from_env()
    };
    // rows/dim/nlists per scale; default is the million-hostname case.
    let (rows, dim, nlists, nq, reps) = match scale {
        Scale::Tiny => (20_000, 32, 64, 32, 3),
        Scale::Small => (200_000, 48, 256, 64, 2),
        Scale::Default => (1_000_000, 64, 512, 64, 2),
        Scale::Large => (1_000_000, 64, 1024, 64, 2),
    };

    header("IVF-flat recall vs latency (exact tiled scan baseline)");
    row("scale", scale.label());
    row("rows x dim", format!("{rows} x {dim}"));
    row("k / nlists / queries", format!("{K} / {nlists} / {nq}"));

    let set = synthetic_set(rows, dim, 3 * nlists, 0xb0b5_1ed5 ^ rows as u64);
    let qs = queries(&set, nq, 0x5e55_10f5 ^ rows as u64);

    let mut scratch = KnnScratch::new();
    let (exact_lat, exact_res) = measure(&qs, reps, |q| {
        set.nearest_to_vector_with_index(q, K, &ExactScan, &mut scratch)
    });
    let exact = summarize(&exact_lat);
    row(
        "exact scan",
        format!(
            "p50 {:.2}ms  p95 {:.2}ms  {:.1} q/s",
            exact.p50_ms, exact.p95_ms, exact.queries_per_sec
        ),
    );
    let truth: Vec<Vec<u32>> = exact_res
        .iter()
        .map(|r| {
            let mut ids: Vec<u32> = r.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let t = Instant::now();
    let ivf = IvfFlat::build(
        &set,
        IvfParams {
            nlists,
            nprobe: 1,
            seed: hostprof_embed::DEFAULT_IVF_SEED,
        },
    );
    let build_seconds = t.elapsed().as_secs_f64();
    row(
        "ivf build",
        format!("{build_seconds:.2}s ({} lists)", ivf.nlists()),
    );

    let mut sweep = Vec::new();
    let mut target_met = false;
    let mut nprobe = 1usize;
    loop {
        let probed = ivf.with_nprobe(nprobe);
        let (lat, res) = measure(&qs, reps, |q| {
            set.nearest_to_vector_with_index(q, K, &probed, &mut scratch)
        });
        let s = summarize(&lat);
        let r = recall(&truth, &res);
        let speedup = exact.mean_ms / s.mean_ms;
        if r >= RECALL_TARGET && speedup >= SPEEDUP_TARGET {
            target_met = true;
        }
        row(
            format!("nprobe={nprobe}").as_str(),
            format!(
                "recall@{K} {r:.4}  p50 {:.2}ms  p95 {:.2}ms  ({speedup:.1}x)",
                s.p50_ms, s.p95_ms
            ),
        );
        sweep.push(SweepRow {
            nprobe,
            recall_at_k: r,
            p50_ms: s.p50_ms,
            p95_ms: s.p95_ms,
            mean_ms: s.mean_ms,
            queries_per_sec: s.queries_per_sec,
            speedup_vs_exact: speedup,
        });
        if nprobe >= ivf.nlists() {
            break;
        }
        nprobe = (nprobe * 2).min(ivf.nlists());
    }

    // The exhaustive row is the conformance anchor: identical candidate
    // set, identical kernel, scan-order-independent selection.
    let last = sweep.last().expect("sweep is non-empty");
    assert!(
        (last.recall_at_k - 1.0).abs() < 1e-12,
        "exhaustive probing must reproduce exact ground truth (got recall {})",
        last.recall_at_k
    );
    row(
        "target",
        format!(
            "recall>={RECALL_TARGET} at >={SPEEDUP_TARGET}x: {}",
            if target_met { "met" } else { "NOT met" }
        ),
    );

    let headline = format!(
        "{rows} rows, recall/speedup target {}",
        if target_met { "met" } else { "not met" }
    );
    write_results_stamped(
        "bench_knn",
        &BenchKnnResults {
            scale: scale.label().to_string(),
            rows,
            dim,
            k: K,
            nlists: ivf.nlists(),
            queries: nq,
            build_seconds,
            recall_target: RECALL_TARGET,
            speedup_target: SPEEDUP_TARGET,
            target_met,
            exact,
            sweep,
        },
        &headline,
    );
}
