//! Differential oracle for the hostprof pipeline.
//!
//! Every optimized layer in this workspace — the chaos-hardened observer
//! ingest, the SIMD/work-sharded skipgram trainer, the tiled batch kNN —
//! is verified here against a second, *independently written* and
//! deliberately naive implementation of the same algorithm. The oracle
//! code favors readability over speed: no SIMD, no batching, no
//! threading, no scratch reuse. Where the paper pins exact semantics
//! (T = 20 min windows with first-visit dedup, Eq. 3/4 aggregation),
//! the oracle is a line-by-line transcription of the math.
//!
//! Module map (one per pipeline stage):
//!
//! * [`defense`] — naive twin of every §15 defense transform: decoy
//!   injection, padding schedules, ECH/DoH wire decisions, NAT folding
//! * [`sni`] — TLS ClientHello / QUIC Initial SNI recovery (§4.1)
//! * [`window`] — session windowing + dedup + blocklist filtering (§4.1)
//! * [`sgd`] — skipgram-with-negative-sampling reference trainer (§4.2)
//! * [`update`] — naive online-update reference: vocabulary growth with
//!   stable ids, replayable extension-row init, the negative-table
//!   rebuild policy, and resumed SGD (DESIGN.md §14)
//! * [`knn`] — exact O(V) cosine k-nearest-neighbor scan (§4.3)
//! * [`profile`] — Eq. 3/4 category aggregation (§4.3)
//! * [`stats`] — Welford moments and a paired t-test with an
//!   independently computed p-value (§5)
//! * [`driver`] — replays one seeded synthetic world through oracle and
//!   production paths and diffs them stage by stage
//! * [`ann`] — exact-vs-IVF differential: recall@N per session, the
//!   induced Eq. 3/4 importance divergence, and the end-to-end CTR gap
//! * [`intern`] — first-seen dense hostname interning by linear scan,
//!   diffed against the arena-backed `hostprof-store` interner
//! * [`diff`] — ulp/abs-delta helpers and the typed mismatch report
//!
//! The crate intentionally has no optimized dependencies of its own: it
//! links the production crates only to *call* them from the driver and
//! to share plain data types.

pub mod ann;
pub mod defense;
pub mod diff;
pub mod driver;
pub mod intern;
pub mod knn;
pub mod profile;
pub mod sgd;
pub mod sni;
pub mod stats;
pub mod update;
pub mod window;

use std::fmt;

/// Pipeline stage a mismatch is attributed to, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Trace/wire-level defense transform (decoys, padding, ECH/DoH
    /// decisions, NAT address folding) — upstream of capture.
    Defense,
    /// TLS/QUIC SNI extraction.
    Sni,
    /// Session windowing, dedup, blocklist filtering.
    Window,
    /// Skipgram training (vocabulary, init, SGD weight trajectories).
    Train,
    /// Online model update (vocabulary growth, id remapping stability,
    /// extension-row init, table rebuild policy, incremental SGD).
    Update,
    /// Cosine k-nearest-neighbor search.
    Knn,
    /// Eq. 3/4 category profile aggregation.
    Profile,
    /// Welford moments and paired t-test.
    Stats,
    /// End-to-end CTR of the ad-replacement experiment.
    Ctr,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Defense => "defense",
            Stage::Sni => "sni",
            Stage::Window => "window",
            Stage::Train => "train",
            Stage::Update => "update",
            Stage::Knn => "knn",
            Stage::Profile => "profile",
            Stage::Stats => "stats",
            Stage::Ctr => "ctr",
        };
        f.write_str(name)
    }
}

/// One typed oracle-vs-production disagreement.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Stage the disagreement is attributed to.
    pub stage: Stage,
    /// Which item diverged (hostname, `user3/day1`, `input[token]`, ...).
    pub item: String,
    /// Largest absolute numeric delta observed for this item (0 for
    /// purely structural mismatches).
    pub max_abs: f64,
    /// Largest ulp distance observed for this item (`u64::MAX` when the
    /// values are not comparable, e.g. one NaN).
    pub max_ulp: u64,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} (max_abs={:e}, max_ulp={})",
            self.stage, self.item, self.detail, self.max_abs, self.max_ulp
        )
    }
}

/// Outcome of a differential run: how much was compared, what diverged.
#[derive(Debug, Default, Clone)]
pub struct DiffReport {
    /// Number of individual oracle-vs-production comparisons performed.
    pub items_checked: usize,
    /// Every disagreement found, in discovery order.
    pub mismatches: Vec<Mismatch>,
}

impl DiffReport {
    /// True when production matched the oracle on every compared item.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Record one comparison that agreed.
    pub fn check_ok(&mut self) {
        self.items_checked += 1;
    }

    /// Record one comparison that disagreed.
    pub fn check_failed(&mut self, m: Mismatch) {
        self.items_checked += 1;
        self.mismatches.push(m);
    }

    /// Count of mismatches attributed to `stage`.
    pub fn mismatches_in(&self, stage: Stage) -> usize {
        self.mismatches.iter().filter(|m| m.stage == stage).count()
    }

    /// Multi-line human-readable summary (stage-attributed).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} comparisons, {} mismatches\n",
            self.items_checked,
            self.mismatches.len()
        );
        for m in &self.mismatches {
            out.push_str(&format!("  {m}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_bookkeeping() {
        let mut r = DiffReport::default();
        assert!(r.is_clean());
        r.check_ok();
        r.check_failed(Mismatch {
            stage: Stage::Knn,
            item: "query 3".into(),
            max_abs: 1e-3,
            max_ulp: 8192,
            detail: "neighbor 0 differs".into(),
        });
        assert_eq!(r.items_checked, 2);
        assert!(!r.is_clean());
        assert_eq!(r.mismatches_in(Stage::Knn), 1);
        assert_eq!(r.mismatches_in(Stage::Train), 0);
        assert!(r.summary().contains("[knn] query 3"));
    }
}
