//! Complementary CDFs (survival functions).
//!
//! Figures 2 and 3 of the paper plot, for each threshold `N`, the fraction
//! of users who visited *at least* `N` hostnames (resp. categories) outside
//! a popularity core. [`Ccdf`] provides exactly those queries plus the
//! inverse ("how many hostnames do the top 25 % of users exceed?").

use serde::{Deserialize, Serialize};

/// An empirical survival function over a sample of counts.
///
/// ```
/// use hostprof_stats::Ccdf;
/// // "75% of the users visit at least N hostnames":
/// let ccdf = Ccdf::from_counts([120usize, 300, 450, 900]);
/// assert_eq!(ccdf.fraction_at_least(300.0), 0.75);
/// assert_eq!(ccdf.value_at_fraction(0.75), Some(300.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ccdf {
    /// Sorted ascending sample.
    sorted: Vec<f64>,
}

impl Ccdf {
    /// Build from any sample (order irrelevant, NaNs rejected).
    ///
    /// # Panics
    /// Panics if the sample contains NaN.
    pub fn new<I: IntoIterator<Item = f64>>(sample: I) -> Self {
        let mut sorted: Vec<f64> = sample.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "CCDF sample must not contain NaN"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted }
    }

    /// Convenience constructor from integer counts.
    pub fn from_counts<I: IntoIterator<Item = usize>>(sample: I) -> Self {
        Self::new(sample.into_iter().map(|c| c as f64))
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≥ x)`: fraction of the sample at or above `x`.
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Inverse survival: the largest value `x` such that at least
    /// `fraction` of the sample is ≥ `x`. This answers the paper's reading
    /// "75 % of the users visit at least 217 hostnames".
    pub fn value_at_fraction(&self, fraction: f64) -> Option<f64> {
        if self.sorted.is_empty() || fraction <= 0.0 {
            return self.sorted.last().copied();
        }
        if fraction >= 1.0 {
            return self.sorted.first().copied();
        }
        // We need the k-th largest where k = ceil(fraction * n).
        let n = self.sorted.len();
        let k = (fraction * n as f64).ceil() as usize;
        let k = k.clamp(1, n);
        Some(self.sorted[n - k])
    }

    /// The survival curve as `(value, fraction ≥ value)` points at each
    /// distinct sample value, ascending — directly plottable as Figure 2/3.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let n = self.sorted.len() as f64;
        let mut i = 0usize;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let frac = (self.sorted.len() - i) as f64 / n;
            out.push((v, frac));
            while i < self.sorted.len() && self.sorted[i] == v {
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_at_least_counts_ties_correctly() {
        let c = Ccdf::from_counts([1, 2, 2, 3, 10]);
        assert_eq!(c.fraction_at_least(0.0), 1.0);
        assert_eq!(c.fraction_at_least(2.0), 0.8);
        assert_eq!(c.fraction_at_least(3.0), 0.4);
        assert_eq!(c.fraction_at_least(11.0), 0.0);
    }

    #[test]
    fn value_at_fraction_inverts_the_survival() {
        // 100 users with counts 1..=100.
        let c = Ccdf::from_counts(1..=100usize);
        // 75 % of users have at least 26 (users 26..=100).
        assert_eq!(c.value_at_fraction(0.75), Some(26.0));
        assert_eq!(c.value_at_fraction(0.25), Some(76.0));
        // Consistency: fraction at that value is ≥ requested.
        let v = c.value_at_fraction(0.75).unwrap();
        assert!(c.fraction_at_least(v) >= 0.75);
    }

    #[test]
    fn extreme_fractions_hit_the_endpoints() {
        let c = Ccdf::from_counts([5, 7, 9]);
        assert_eq!(c.value_at_fraction(1.0), Some(5.0));
        assert_eq!(c.value_at_fraction(0.0), Some(9.0));
    }

    #[test]
    fn points_trace_the_curve() {
        let c = Ccdf::from_counts([1, 1, 2, 4]);
        let pts = c.points();
        assert_eq!(pts, vec![(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)]);
    }

    #[test]
    fn empty_sample_behaves() {
        let c = Ccdf::new(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_least(1.0), 0.0);
        assert_eq!(c.value_at_fraction(0.5), None);
        assert!(c.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Ccdf::new([1.0, f64::NAN]);
    }
}
