//! # hostprof-net
//!
//! The network-observer substrate for the CoNEXT '21 *User Profiling by
//! Network Observers* reproduction.
//!
//! The paper's threat model is a passive eavesdropper (ISP, VPN, WiFi
//! provider) that learns the hostnames users visit from the **SNI** field of
//! TLS ClientHello messages (and the equivalent field in QUIC Initial
//! packets and in DNS queries). The paper's experiment used a Chrome
//! extension as a stand-in for that observer; this crate closes the loop at
//! the byte level instead:
//!
//! * [`tls`] — a TLS 1.2/1.3 ClientHello **builder and parser** (record
//!   layer, handshake header, extensions, `server_name`), including an
//!   `encrypted_client_hello` extension to model ECH/ESNI-protected flows;
//! * [`quic`] — a simplified QUIC Initial (long header + CRYPTO frame
//!   carrying the ClientHello). Real Initial packets are protected with
//!   keys derived from the public Destination Connection ID, so any on-path
//!   observer can decrypt them; we model that by leaving the payload in the
//!   clear, which preserves exactly the observer-visible information;
//! * [`dns`] — a DNS query codec, for the paper's §7.2 "DNS providers are
//!   profilers too" discussion;
//! * [`packet`] / [`flow`] — packets, 5-tuples and a flow table that
//!   inspects only the first client payload of each flow;
//! * [`observer`] — [`observer::SniObserver`], the passive device that turns
//!   a packet stream into per-client hostname sequences — the exact input
//!   of the profiling algorithm;
//! * [`synthesize`] — turns abstract `(time, client, hostname)` request
//!   events into wire traffic, with optional NAT aggregation to reproduce
//!   the paper's "multiple users behind one IP" confusion experiment;
//! * [`capture`] — a compact capture file format so observed traffic can
//!   be recorded once and re-analyzed offline;
//! * [`ip`] — raw IPv4/TCP/UDP header codecs (real header checksums), so
//!   the observer can be fed raw datagrams as a tap would deliver them.
//!
//! Every parser is panic-free on arbitrary bytes (property-tested) and
//! zero-copy where it matters ([`tls::extract_sni`] borrows from the
//! input), backing the paper's claim that profiling can run at line rate.

pub mod capture;
pub mod chaos;
pub mod dns;
pub mod error;
pub mod flow;
pub mod ip;
pub mod observer;
pub mod packet;
pub mod quic;
pub mod synthesize;
pub mod tls;
mod wire;

pub use capture::{CaptureError, CaptureReader, CaptureWriter};
pub use chaos::{ChaosConfig, ChaosOutcome, ChaosStats};
pub use error::ParseError;
pub use flow::{FlowKey, FlowStats, FlowTable};
pub use observer::{Observation, ObserverConfig, ObserverStats, SniObserver};
pub use packet::{Endpoint, Packet, Transport};
pub use synthesize::{Addressing, RequestEvent, TrafficSynthesizer, WireOverride};
