//! SKIPGRAM training (SGD with negative sampling, optional Hogwild).
//!
//! Implements the paper's Eq. 2: for each window position, maximize
//! `log σ(h_cᵀ h'_o)` for the observed (center, context) pair and
//! `log σ(−h_cᵀ h'_k)` for `K` negatives drawn from the powered unigram
//! distribution. All parameters are learned with SGD under a linearly
//! decaying learning rate, exactly as in word2vec/GENSIM.
//!
//! # Parallelism
//!
//! With `threads = 1` training is bit-deterministic. With more threads we
//! use **Hogwild** (Recht et al.): workers update the shared weight
//! matrices without locks. The data races are benign — each update touches
//! a handful of rows, and SGD tolerates the occasional lost write; this is
//! the same strategy as the reference word2vec and GENSIM C paths, and it
//! is what lets the paper claim line-rate scalability. The `unsafe` is
//! confined to the `SharedWeights` accessor.

use crate::config::{Sharding, SkipGramConfig};
use crate::embedding::EmbeddingSet;
use crate::sigmoid::SigmoidTable;
use crate::simd::{self, Kernel};
use crate::table::NegativeTable;
use crate::vocab::Vocab;
use serde::Serialize;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Throughput and schedule-coverage record of the last training run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TrainStats {
    /// Tokens the LR schedule was planned over (`corpus tokens × epochs`).
    pub planned_tokens: u64,
    /// Tokens actually flushed into the decay schedule. Equal to
    /// `planned_tokens` — the trainer flushes every worker's trailing
    /// remainder — and asserted so by the test-suite.
    pub processed_tokens: u64,
    /// Wall-clock training time.
    pub elapsed_secs: f64,
    /// Workers actually used.
    pub threads: usize,
    /// Whether the AVX2+FMA fused kernels ran (false: scalar or the
    /// portable SIMD fallback).
    pub simd_accelerated: bool,
}

impl TrainStats {
    /// Training throughput in tokens/second.
    pub fn tokens_per_sec(&self) -> f64 {
        self.processed_tokens as f64 / self.elapsed_secs.max(1e-12)
    }

    /// Fraction of planned tokens the LR decay schedule saw (1.0 when the
    /// trailing remainders were flushed correctly).
    pub fn lr_coverage(&self) -> f64 {
        self.processed_tokens as f64 / self.planned_tokens.max(1) as f64
    }
}

/// Contiguous, token-count-balanced chunk boundaries over per-sequence
/// token counts: greedy accumulation toward ~8 chunks per worker, so the
/// work-stealing cursor has enough granularity to absorb skewed sequence
/// lengths without the chunk-claim overhead dominating.
///
/// Public so the bench harness can reproduce the schedule when comparing
/// static and balanced sharding.
pub fn balanced_chunk_ranges(token_counts: &[usize], threads: usize) -> Vec<Range<usize>> {
    let n = token_counts.len();
    if n == 0 {
        return Vec::new();
    }
    let total: usize = token_counts.iter().sum();
    // Size chunks off the mass *excluding* the single largest sequence: a
    // dominant sequence gets a chunk of its own no matter what, and must
    // not inflate the target so far that the remaining sequences collapse
    // into too few chunks for stealing to balance.
    let largest = token_counts.iter().copied().max().unwrap_or(0);
    let target = ((total - largest) / (threads.max(1) * 8)).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    let mut acc = 0usize;
    for (i, &t) in token_counts.iter().enumerate() {
        acc += t;
        if acc >= target {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// A trained (or in-training) skip-gram model.
#[derive(Debug)]
pub struct SkipGram {
    config: SkipGramConfig,
    vocab: Vocab,
    /// Input (center) matrix, row-major `|V| × d`.
    input: Vec<f32>,
    /// Context (output) matrix, row-major `|V| × d`.
    context: Vec<f32>,
    /// Stats of the most recent [`SkipGram::run_sgd`] pass.
    stats: TrainStats,
    /// Negative table carried across [`SkipGram::update`] calls so the
    /// rebuild policy ([`NegativeTable::needs_rebuild`]) has something to
    /// age. `None` until the first update.
    table: Option<NegativeTable>,
}

/// What one [`SkipGram::update`] call did.
#[derive(Debug, Clone, Copy)]
pub struct UpdateReport {
    /// Tokens appended to the vocabulary (old ids never moved).
    pub appended_tokens: usize,
    /// Sequences with ≥ 2 in-vocabulary tokens that SGD actually saw.
    pub trained_sequences: usize,
    /// Whether the negative table was rebuilt this call.
    pub table_rebuilt: bool,
    /// Stats of the incremental SGD pass (zeroed when nothing trained).
    pub stats: TrainStats,
}

/// Raw-pointer view of the two weight matrices for Hogwild workers.
///
/// Safety contract: rows are only accessed through [`SharedWeights::row`]
/// within the matrix bounds, and the underlying vectors outlive the worker
/// scope (guaranteed by `crossbeam::thread::scope`). Concurrent unsynchronized
/// writes are *intentional* (Hogwild).
struct SharedWeights {
    input: *mut f32,
    context: *mut f32,
    rows: usize,
    dim: usize,
}

unsafe impl Sync for SharedWeights {}

impl SharedWeights {
    #[inline]
    /// Mutable slice of one row of the input matrix.
    ///
    /// # Safety
    /// `idx < rows`; aliasing across threads is accepted per Hogwild —
    /// handing out `&mut` from `&self` is the whole point of the lock-free
    /// scheme, hence the lint opt-out.
    #[allow(clippy::mut_from_ref)]
    unsafe fn input_row(&self, idx: usize) -> &mut [f32] {
        debug_assert!(idx < self.rows);
        std::slice::from_raw_parts_mut(self.input.add(idx * self.dim), self.dim)
    }

    #[inline]
    /// Mutable slice of one row of the context matrix (same contract).
    #[allow(clippy::mut_from_ref)]
    unsafe fn context_row(&self, idx: usize) -> &mut [f32] {
        debug_assert!(idx < self.rows);
        std::slice::from_raw_parts_mut(self.context.add(idx * self.dim), self.dim)
    }
}

/// xorshift64* — the cheap per-worker RNG word2vec uses in its hot loop.
/// Crate-visible so the corpus reservoir draws from the same stream family.
#[inline]
pub(crate) fn next_random(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Run `worker(tid)` on `n_threads` scoped threads (inline when 1, which
/// keeps the single-thread path free of spawn overhead and deterministic).
fn run_workers<F: Fn(usize) + Sync>(n_threads: usize, worker: F) {
    if n_threads == 1 {
        worker(0);
    } else {
        if let Err(payload) = crossbeam::thread::scope(|s| {
            for tid in 0..n_threads {
                let worker_ref = &worker;
                s.spawn(move |_| worker_ref(tid));
            }
        }) {
            // Re-raise the worker's own panic payload rather than masking
            // it behind a generic message.
            std::panic::resume_unwind(payload);
        }
    }
}

/// Per-worker mutable training state: RNG stream, learning rate, the
/// un-flushed token count, and the reusable hot-loop buffers.
struct WorkerState {
    rng: u64,
    lr: f32,
    since_lr_update: u64,
    neu1e: Vec<f32>,
    kept: Vec<u32>,
    /// SIMD-path staging: (context-row pointer, label) for one pair's
    /// positive + negatives, handed to [`simd::train_pair`] as a batch.
    /// Raw pointers are safe to hold here because each `WorkerState` is
    /// built and dropped inside its own worker thread.
    samples: Vec<(*mut f32, f32)>,
}

impl WorkerState {
    fn new(config: &SkipGramConfig, tid: usize) -> Self {
        Self {
            rng: config.seed ^ (0x9e37_79b9u64.wrapping_mul(tid as u64 + 1)) | 1,
            lr: config.learning_rate,
            since_lr_update: 0,
            neu1e: vec![0f32; config.dim],
            kept: Vec::new(),
            samples: Vec::with_capacity(config.negatives + 1),
        }
    }
}

/// Everything the workers share read-only (plus the Hogwild weight view
/// and the atomic progress counter). One instance per `run_sgd` call.
struct TrainCtx<'a> {
    shared: SharedWeights,
    table: &'a NegativeTable,
    sigmoid: &'a SigmoidTable,
    keep_probs: &'a [f64],
    config: &'a SkipGramConfig,
    kernel: Kernel,
    planned: u64,
    processed: AtomicU64,
}

impl TrainCtx<'_> {
    /// Train on one encoded sequence: subsample, walk the dynamic windows,
    /// and apply the positive + K-negative updates with the configured
    /// kernel.
    fn train_sequence(&self, st: &mut WorkerState, seq: &[u32]) {
        let config = self.config;
        let WorkerState {
            rng,
            lr,
            since_lr_update,
            neu1e,
            kept,
            samples,
        } = st;
        // Frequent-token subsampling (reusing one buffer keeps the hot
        // loop allocation-free). Disabled subsampling makes the filter the
        // identity — and draws no RNG — so the per-token copy is skipped
        // without perturbing the random stream.
        let toks: &[u32] = if config.subsample > 0.0 {
            kept.clear();
            kept.extend(seq.iter().copied().filter(|&w| {
                let p = self.keep_probs[w as usize];
                p >= 1.0 || {
                    let u = (next_random(rng) >> 11) as f64 / (1u64 << 53) as f64;
                    u < p
                }
            }));
            kept
        } else {
            seq
        };
        *since_lr_update += seq.len() as u64;
        if *since_lr_update >= 10_000 {
            let done = self
                .processed
                .fetch_add(*since_lr_update, Ordering::Relaxed)
                + *since_lr_update;
            *since_lr_update = 0;
            let frac = done as f32 / self.planned as f32;
            *lr = (config.learning_rate * (1.0 - frac)).max(config.learning_rate * 1e-4);
        }
        if toks.len() < 2 {
            return;
        }
        for c in 0..toks.len() {
            // Dynamic (reduced) window, as in word2vec.
            let b = (next_random(rng) % config.window as u64) as usize;
            let lo = c.saturating_sub(config.window - b);
            let hi = (c + config.window - b).min(toks.len() - 1);
            for j in lo..=hi {
                if j == c {
                    continue;
                }
                let center = toks[c] as usize;
                let ctx_word = toks[j];
                // SAFETY: indices come from the vocabulary; the matrices
                // outlive this scope; Hogwild races accepted.
                // Positive sample + K negatives (redrawn on collision with
                // the context word, never silently dropped). Both branches
                // draw targets in the same order, so the RNG stream — and
                // therefore the sample choice — is kernel-independent.
                //
                // SAFETY: indices come from the vocabulary; the matrices
                // outlive this scope; Hogwild races accepted.
                match self.kernel {
                    Kernel::Scalar => unsafe {
                        // Slicing to `dim` up front lets the compiler drop
                        // the per-element bounds checks; the loops below are
                        // the plain word2vec reference (the dot stays a
                        // strictly sequential reduction).
                        let dim = config.dim;
                        let h_c = &mut self.shared.input_row(center)[..dim];
                        let neu1e = &mut neu1e[..dim];
                        neu1e.iter_mut().for_each(|v| *v = 0.0);
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (ctx_word as usize, 1.0f32)
                            } else {
                                match self.table.sample_excluding(|| next_random(rng), ctx_word) {
                                    Some(neg) => (neg as usize, 0.0f32),
                                    None => continue,
                                }
                            };
                            let h_o = &mut self.shared.context_row(target)[..dim];
                            let mut f = 0f32;
                            for d in 0..dim {
                                f += h_c[d] * h_o[d];
                            }
                            let g = (label - self.sigmoid.get(f)) * *lr;
                            for d in 0..dim {
                                neu1e[d] += g * h_o[d];
                                h_o[d] += g * h_c[d];
                            }
                        }
                        for d in 0..dim {
                            h_c[d] += neu1e[d];
                        }
                    },
                    Kernel::Simd => unsafe {
                        // Stage the pair's row pointers, then hand the whole
                        // batch — dots, sigmoid lookups, fused updates and
                        // the `h_c += neu1e` flush — to one kernel call.
                        // `train_pair` initializes `neu1e` from the first
                        // sample, so the buffer is never zeroed here.
                        samples.clear();
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (ctx_word as usize, 1.0f32)
                            } else {
                                match self.table.sample_excluding(|| next_random(rng), ctx_word) {
                                    Some(neg) => (neg as usize, 0.0f32),
                                    None => continue,
                                }
                            };
                            samples.push((self.shared.context_row(target).as_mut_ptr(), label));
                        }
                        simd::train_pair(
                            self.shared.input_row(center).as_mut_ptr(),
                            samples,
                            neu1e,
                            *lr,
                            self.sigmoid,
                        );
                    },
                }
            }
        }
    }

    /// Flush the trailing `since_lr_update` remainder into the shared
    /// progress counter so the decay schedule accounts for every token
    /// (workers used to drop up to 10k tokens each here).
    fn flush_progress(&self, st: &mut WorkerState) {
        if st.since_lr_update > 0 {
            self.processed
                .fetch_add(st.since_lr_update, Ordering::Relaxed);
            st.since_lr_update = 0;
        }
    }
}

impl SkipGram {
    /// Build the vocabulary from `sequences` and train.
    ///
    /// Returns an error for invalid configs or an empty corpus.
    ///
    /// ```
    /// use hostprof_embed::{SkipGram, SkipGramConfig};
    /// let mut corpus: Vec<Vec<String>> = Vec::new();
    /// for i in 0..60 {
    ///     // Travel sessions co-request an opaque API endpoint…
    ///     corpus.push(vec![
    ///         format!("travel{}.com", i % 3),
    ///         "api.bkng.cloud".to_string(),
    ///         format!("travel{}.com", (i + 1) % 3),
    ///     ]);
    ///     // …sport sessions never do.
    ///     corpus.push(vec![
    ///         format!("sport{}.com", i % 3),
    ///         format!("sport{}.com", (i + 1) % 3),
    ///     ]);
    /// }
    /// let model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
    /// let emb = model.into_embeddings();
    /// // The unlabeled API endpoint lands nearer the travel sites it is
    /// // co-requested with (the paper's api.bkng.azure.com example).
    /// let to_travel = emb.cosine("api.bkng.cloud", "travel0.com").unwrap();
    /// let to_sport = emb.cosine("api.bkng.cloud", "sport0.com").unwrap();
    /// assert!(to_travel > to_sport);
    /// ```
    pub fn train<S: AsRef<str>>(
        sequences: &[Vec<S>],
        config: &SkipGramConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let vocab = Vocab::build(
            sequences.iter().map(|s| s.iter().map(|t| t.as_ref())),
            config.min_count,
            config.subsample,
        );
        if vocab.is_empty() {
            return Err("empty corpus after min-count filtering".into());
        }
        let encoded: Vec<Vec<u32>> = sequences
            .iter()
            .map(|s| vocab.encode(s.iter().map(|t| t.as_ref())))
            .filter(|s| s.len() >= 2)
            .collect();
        if encoded.is_empty() {
            return Err("no sequence has two or more in-vocabulary tokens".into());
        }
        Self::train_encoded(vocab, &encoded, config)
    }

    /// Train over pre-encoded index sequences (the pipeline's fast path:
    /// the daily retraining loop re-encodes once, not per epoch).
    pub fn train_encoded(
        vocab: Vocab,
        sequences: &[Vec<u32>],
        config: &SkipGramConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        if vocab.is_empty() {
            return Err("empty vocabulary".into());
        }
        let dim = config.dim;
        let rows = vocab.len();

        // word2vec initialization: input uniform in (-0.5/d, 0.5/d),
        // context all-zero.
        let mut init_state = config.seed | 1;
        let mut input = Vec::with_capacity(rows * dim);
        for _ in 0..rows * dim {
            let r = next_random(&mut init_state);
            let u = (r >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
            input.push((u - 0.5) / dim as f32);
        }
        let context = vec![0f32; rows * dim];

        let mut model = Self {
            config: config.clone(),
            vocab,
            input,
            context,
            stats: TrainStats {
                planned_tokens: 0,
                processed_tokens: 0,
                elapsed_secs: 0.0,
                threads: 0,
                simd_accelerated: false,
            },
            table: None,
        };
        model.stats = model.run_sgd(sequences);
        Ok(model)
    }

    fn run_sgd(&mut self, sequences: &[Vec<u32>]) -> TrainStats {
        let table = NegativeTable::from_vocab(&self.vocab);
        self.run_sgd_with(sequences, &table)
    }

    /// The SGD pass proper, against a caller-supplied negative table. The
    /// table's bits are a pure function of the vocabulary, so whether it
    /// was freshly built or carried over by the update path's rebuild
    /// policy never changes the op sequence — only whether the O(table)
    /// construction cost was paid.
    fn run_sgd_with(&mut self, sequences: &[Vec<u32>], table: &NegativeTable) -> TrainStats {
        let config = self.config.clone();
        let kernel = Kernel::resolve(config.kernel);
        let total_tokens: u64 = sequences.iter().map(|s| s.len() as u64).sum();
        let planned = (total_tokens * config.epochs as u64).max(1);
        let n_threads = config.threads.min(sequences.len()).max(1);
        let mut stats = TrainStats {
            planned_tokens: planned,
            processed_tokens: 0,
            elapsed_secs: 0.0,
            threads: n_threads,
            simd_accelerated: kernel.is_accelerated(),
        };
        if table.is_empty() {
            return stats;
        }
        let sigmoid = SigmoidTable::new();
        // Snapshot the keep-probabilities so the worker closures don't
        // borrow `self` while the weight matrices are aliased raw pointers.
        let keep_probs: Vec<f64> = (0..self.vocab.len())
            .map(|i| self.vocab.keep_prob(i as u32))
            .collect();

        let ctx = TrainCtx {
            shared: SharedWeights {
                input: self.input.as_mut_ptr(),
                context: self.context.as_mut_ptr(),
                rows: self.vocab.len(),
                dim: config.dim,
            },
            table,
            sigmoid: &sigmoid,
            keep_probs: &keep_probs,
            config: &config,
            kernel,
            planned,
            processed: AtomicU64::new(0),
        };

        let start = Instant::now();
        match config.sharding {
            Sharding::Balanced => {
                // Token-balanced chunks claimed through one atomic cursor:
                // a worker stuck on a giant sequence simply claims fewer
                // chunks, so skewed lengths no longer idle the others. The
                // cursor runs over `epochs` laps of the chunk list — with
                // one thread that is exactly the sequential epoch order.
                let lens: Vec<usize> = sequences.iter().map(Vec::len).collect();
                let chunks = balanced_chunk_ranges(&lens, n_threads);
                let n_chunks = chunks.len();
                let total_items = n_chunks * config.epochs;
                let cursor = AtomicUsize::new(0);
                run_workers(n_threads, |tid| {
                    let mut st = WorkerState::new(&config, tid);
                    loop {
                        let item = cursor.fetch_add(1, Ordering::Relaxed);
                        if item >= total_items {
                            break;
                        }
                        for seq in &sequences[chunks[item % n_chunks].clone()] {
                            ctx.train_sequence(&mut st, seq);
                        }
                    }
                    ctx.flush_progress(&mut st);
                });
            }
            Sharding::Static => {
                run_workers(n_threads, |tid| {
                    let mut st = WorkerState::new(&config, tid);
                    for _epoch in 0..config.epochs {
                        // Static sharding: worker `tid` owns every n-th
                        // sequence.
                        for seq in sequences.iter().skip(tid).step_by(n_threads) {
                            ctx.train_sequence(&mut st, seq);
                        }
                    }
                    ctx.flush_progress(&mut st);
                });
            }
        }
        stats.elapsed_secs = start.elapsed().as_secs_f64();
        stats.processed_tokens = ctx.processed.load(Ordering::Relaxed);
        stats
    }

    /// Fine-tune the model on additional sequences without rebuilding the
    /// vocabulary — the incremental alternative to the paper's full daily
    /// retrain ("the amount of data used for training is configurable",
    /// §5.4). Out-of-vocabulary hostnames are dropped; the same LR
    /// schedule is replayed over the new data. Returns how many sequences
    /// were actually used.
    pub fn continue_training<S: AsRef<str>>(&mut self, sequences: &[Vec<S>]) -> usize {
        let encoded: Vec<Vec<u32>> = sequences
            .iter()
            .map(|s| self.vocab.encode(s.iter().map(|t| t.as_ref())))
            .filter(|s| s.len() >= 2)
            .collect();
        if encoded.is_empty() {
            return 0;
        }
        self.stats = self.run_sgd(&encoded);
        encoded.len()
    }

    /// The online update entry point (DESIGN.md §14): fold a batch of
    /// fresh sessions into the **live** model without a from-scratch
    /// retrain. Three steps, each deterministic:
    ///
    /// 1. Grow the vocabulary ([`Vocab::grow`]) — occurrences of known
    ///    hostnames bump counts in place, new hostnames append; an id
    ///    handed out once never moves, so every serving-side structure
    ///    keyed by token index stays valid across versions.
    /// 2. Extend the weight matrices: appended input rows get the
    ///    word2vec `(u − 0.5)/d` init from a stream keyed by
    ///    `(seed, old vocab length)` — replaying the same update replays
    ///    the same bits, while successive growths never reuse a stream —
    ///    and appended context rows start at zero, as in initial training.
    /// 3. Rebuild the negative table only when the policy demands it
    ///    ([`NegativeTable::needs_rebuild`]), then resume SGD from the
    ///    live weights over the new sequences with the configured
    ///    epochs/LR schedule (a fresh linear decay over this batch, like
    ///    [`Self::continue_training`]).
    ///
    /// With `threads = 1` the whole call is bit-deterministic and matches
    /// the naive `oracle::update` reference exactly.
    pub fn update<S: AsRef<str>>(&mut self, sequences: &[Vec<S>]) -> UpdateReport {
        let old_len = self.vocab.len();
        let appended = self.vocab.grow(
            sequences.iter().map(|s| s.iter().map(|t| t.as_ref())),
            self.config.min_count,
            self.config.subsample,
        );
        if appended > 0 {
            let dim = self.config.dim;
            let mut init_state =
                (self.config.seed ^ (old_len as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
            self.input.reserve(appended * dim);
            for _ in 0..appended * dim {
                let r = next_random(&mut init_state);
                let u = (r >> 11) as f32 / (1u64 << 53) as f32;
                self.input.push((u - 0.5) / dim as f32);
            }
            self.context.resize((old_len + appended) * dim, 0f32);
        }
        let table_rebuilt = self
            .table
            .as_ref()
            .is_none_or(|t| t.needs_rebuild(&self.vocab));
        if table_rebuilt {
            self.table = Some(NegativeTable::from_vocab(&self.vocab));
        }
        let encoded: Vec<Vec<u32>> = sequences
            .iter()
            .map(|s| self.vocab.encode(s.iter().map(|t| t.as_ref())))
            .filter(|s| s.len() >= 2)
            .collect();
        let mut report = UpdateReport {
            appended_tokens: appended,
            trained_sequences: encoded.len(),
            table_rebuilt,
            stats: TrainStats {
                planned_tokens: 0,
                processed_tokens: 0,
                elapsed_secs: 0.0,
                threads: 0,
                simd_accelerated: false,
            },
        };
        if encoded.is_empty() {
            return report;
        }
        let table = self.table.take().expect("table built above");
        self.stats = self.run_sgd_with(&encoded, &table);
        self.table = Some(table);
        report.stats = self.stats;
        report
    }

    /// Throughput/coverage statistics of the most recent training pass
    /// (initial training or [`Self::continue_training`]).
    pub fn train_stats(&self) -> &TrainStats {
        &self.stats
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Input vector of a token index.
    pub fn vector(&self, idx: u32) -> &[f32] {
        let d = self.config.dim;
        &self.input[idx as usize * d..(idx as usize + 1) * d]
    }

    /// Context (output-matrix) vector of a token index. The context matrix
    /// is discarded at serving time, but exposing it lets tests compare
    /// *every* weight the kernels touch, not just the input rows.
    pub fn context_vector(&self, idx: u32) -> &[f32] {
        let d = self.config.dim;
        &self.context[idx as usize * d..(idx as usize + 1) * d]
    }

    /// Extract the final embeddings (input matrix), consuming the model.
    pub fn into_embeddings(self) -> EmbeddingSet {
        EmbeddingSet::new(self.config.dim, self.vocab, self.input)
    }

    /// Snapshot the current embeddings without consuming the model — the
    /// online path publishes one serving version per [`Self::update`]
    /// while the trainer keeps the live weights for the next round.
    pub fn embeddings(&self) -> EmbeddingSet {
        EmbeddingSet::new(self.config.dim, self.vocab.clone(), self.input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Corpus with three topical clusters; sequences stay in-cluster.
    fn clustered_corpus(seqs_per_cluster: usize) -> Vec<Vec<String>> {
        let clusters: [&[&str]; 3] = [
            &["travel0", "travel1", "travel2", "travel3", "travel4"],
            &["sport0", "sport1", "sport2", "sport3", "sport4"],
            &["news0", "news1", "news2", "news3", "news4"],
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut out = Vec::new();
        for cluster in clusters {
            for _ in 0..seqs_per_cluster {
                let len = rng.gen_range(4..10);
                out.push(
                    (0..len)
                        .map(|_| cluster[rng.gen_range(0..cluster.len())].to_string())
                        .collect(),
                );
            }
        }
        out
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-12)
    }

    fn cluster_separation(model: &SkipGram) -> (f32, f32) {
        let groups = [
            ["travel0", "travel1", "travel2"],
            ["sport0", "sport1", "sport2"],
            ["news0", "news1", "news2"],
        ];
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            for (gj, h) in groups.iter().enumerate() {
                for a in g {
                    for b in h {
                        if a == b {
                            continue;
                        }
                        let (Some(ia), Some(ib)) = (model.vocab().get(a), model.vocab().get(b))
                        else {
                            continue;
                        };
                        let c = cosine(model.vector(ia), model.vector(ib));
                        if gi == gj {
                            intra.push(c);
                        } else {
                            inter.push(c);
                        }
                    }
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        (mean(&intra), mean(&inter))
    }

    #[test]
    fn learns_cluster_structure() {
        let corpus = clustered_corpus(120);
        let model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let (intra, inter) = cluster_separation(&model);
        assert!(
            intra > inter + 0.25,
            "intra {intra} should beat inter {inter}"
        );
    }

    #[test]
    fn single_thread_training_is_deterministic() {
        use crate::config::KernelChoice;
        let corpus = clustered_corpus(30);
        // `threads = 1, kernel = Scalar` is the pinned bit-determinism
        // contract; Simd and Auto must also be run-to-run deterministic
        // (the dispatch is process-wide constant).
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let cfg = SkipGramConfig {
                kernel,
                ..SkipGramConfig::tiny()
            };
            let a = SkipGram::train(&corpus, &cfg).unwrap();
            let b = SkipGram::train(&corpus, &cfg).unwrap();
            for i in 0..a.vocab().len() as u32 {
                assert_eq!(a.vector(i), b.vector(i), "token {i} ({kernel:?})");
            }
        }
    }

    #[test]
    fn lr_schedule_sees_every_token() {
        let corpus = clustered_corpus(30);
        for (threads, sharding) in [
            (1, Sharding::Balanced),
            (1, Sharding::Static),
            (3, Sharding::Static),
            (4, Sharding::Balanced),
        ] {
            let cfg = SkipGramConfig {
                threads,
                sharding,
                ..SkipGramConfig::tiny()
            };
            let model = SkipGram::train(&corpus, &cfg).unwrap();
            let st = model.train_stats();
            // The trailing per-worker remainders must be flushed: the
            // decay schedule accounts for exactly the planned token count.
            assert_eq!(
                st.processed_tokens, st.planned_tokens,
                "threads={threads} sharding={sharding:?}"
            );
            assert!((st.lr_coverage() - 1.0).abs() < 1e-12);
            assert!(st.tokens_per_sec() > 0.0);
        }
    }

    #[test]
    fn balanced_chunks_cover_all_sequences_exactly_once() {
        // Skewed lengths: one giant sequence among many small ones.
        let mut lens = vec![5usize; 100];
        lens[17] = 10_000;
        for threads in [1, 2, 4, 8] {
            let chunks = balanced_chunk_ranges(&lens, threads);
            let mut next = 0;
            for r in &chunks {
                assert_eq!(r.start, next, "chunks are contiguous and ordered");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, lens.len(), "chunks cover every sequence");
            // The giant sequence cannot trap the small ones in its chunk:
            // enough chunks exist for stealing to balance the rest.
            assert!(chunks.len() > threads, "threads={threads}");
        }
        assert!(balanced_chunk_ranges(&[], 4).is_empty());
    }

    #[test]
    fn hogwild_balanced_and_static_both_learn() {
        let corpus = clustered_corpus(120);
        for sharding in [Sharding::Static, Sharding::Balanced] {
            let cfg = SkipGramConfig {
                threads: 4,
                sharding,
                ..SkipGramConfig::tiny()
            };
            let model = SkipGram::train(&corpus, &cfg).unwrap();
            let (intra, inter) = cluster_separation(&model);
            assert!(
                intra > inter + 0.2,
                "{sharding:?}: intra {intra} vs inter {inter}"
            );
        }
    }

    #[test]
    fn hogwild_training_still_learns() {
        let corpus = clustered_corpus(120);
        let cfg = SkipGramConfig {
            threads: 4,
            ..SkipGramConfig::tiny()
        };
        let model = SkipGram::train(&corpus, &cfg).unwrap();
        let (intra, inter) = cluster_separation(&model);
        assert!(
            intra > inter + 0.2,
            "hogwild: intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn worker_panics_propagate_with_their_payload() {
        // Regression: the scope result used to go through `.expect`, which
        // replaced the worker's panic message with a generic one.
        let result = std::panic::catch_unwind(|| {
            run_workers(2, |tid| {
                if tid == 1 {
                    panic!("worker exploded: tid 1");
                }
            });
        });
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("worker exploded"), "payload lost: {msg:?}");
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let corpus: Vec<Vec<String>> = Vec::new();
        assert!(SkipGram::train(&corpus, &SkipGramConfig::tiny()).is_err());
    }

    #[test]
    fn min_count_can_empty_the_corpus() {
        let corpus = vec![vec!["a".to_string(), "b".to_string()]];
        let cfg = SkipGramConfig {
            min_count: 5,
            ..SkipGramConfig::tiny()
        };
        assert!(SkipGram::train(&corpus, &cfg).is_err());
    }

    #[test]
    fn vectors_are_finite() {
        let corpus = clustered_corpus(40);
        let model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        for i in 0..model.vocab().len() as u32 {
            for v in model.vector(i) {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn continue_training_refines_without_changing_vocab() {
        let corpus = clustered_corpus(40);
        let mut model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let vocab_before = model.vocab().len();
        let v_before = {
            let i = model.vocab().get("travel0").unwrap();
            model.vector(i).to_vec()
        };
        let more = clustered_corpus(40);
        let used = model.continue_training(&more);
        assert!(used > 0);
        assert_eq!(model.vocab().len(), vocab_before, "vocabulary frozen");
        let i = model.vocab().get("travel0").unwrap();
        assert_ne!(model.vector(i), v_before.as_slice(), "weights moved");
        // And the structure is still (or more) coherent.
        let (intra, inter) = cluster_separation(&model);
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn continue_training_ignores_unknown_tokens() {
        let corpus = clustered_corpus(20);
        let mut model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let unknown = vec![vec!["never-seen-1".to_string(), "never-seen-2".to_string()]];
        assert_eq!(model.continue_training(&unknown), 0, "nothing usable");
        // A mixed sequence keeps only known tokens.
        let mixed = vec![vec![
            "travel0".to_string(),
            "never-seen".to_string(),
            "travel1".to_string(),
        ]];
        assert_eq!(model.continue_training(&mixed), 1);
    }

    #[test]
    fn update_grows_vocab_extends_matrices_and_trains() {
        let corpus = clustered_corpus(40);
        let mut model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let before: Vec<(String, u32)> = model
            .vocab()
            .iter()
            .map(|(i, t)| (t.to_string(), i))
            .collect();
        let fresh = vec![
            vec![
                "travel0".to_string(),
                "newhost0.example".to_string(),
                "travel1".to_string(),
            ],
            vec![
                "newhost0.example".to_string(),
                "newhost1.example".to_string(),
            ],
        ];
        let report = model.update(&fresh);
        assert_eq!(report.appended_tokens, 2);
        assert_eq!(report.trained_sequences, 2);
        assert!(report.table_rebuilt, "first update always builds the table");
        assert_eq!(report.stats.processed_tokens, report.stats.planned_tokens);
        for (tok, idx) in &before {
            assert_eq!(model.vocab().get(tok), Some(*idx), "{tok} moved");
        }
        let new_id = model.vocab().get("newhost0.example").unwrap();
        assert_eq!(model.vector(new_id).len(), model.dim());
        assert!(model.vector(new_id).iter().all(|v| v.is_finite()));
        assert!(model.context_vector(new_id).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn update_is_bit_deterministic() {
        let corpus = clustered_corpus(30);
        let batch = vec![
            vec!["sport0".to_string(), "fresh.example".to_string()],
            vec![
                "fresh.example".to_string(),
                "news1".to_string(),
                "news0".to_string(),
            ],
        ];
        let mut a = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let mut b = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        a.update(&batch);
        b.update(&batch);
        for i in 0..a.vocab().len() as u32 {
            assert_eq!(a.vector(i), b.vector(i), "input row {i}");
            assert_eq!(a.context_vector(i), b.context_vector(i), "context row {i}");
        }
    }

    #[test]
    fn update_reuses_the_table_until_the_policy_fires() {
        let corpus = clustered_corpus(40);
        let mut model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let known = vec![vec!["travel0".to_string(), "travel1".to_string()]];
        assert!(model.update(&known).table_rebuilt, "no table yet");
        // Same known-token batch again: no growth, tiny drift → reuse.
        assert!(!model.update(&known).table_rebuilt);
        // A new hostname makes the current table unable to sample it.
        let novel = vec![vec!["travel0".to_string(), "unseen.example".to_string()]];
        assert!(model.update(&novel).table_rebuilt);
    }

    #[test]
    fn successive_updates_use_distinct_init_streams() {
        let corpus = clustered_corpus(30);
        let mut model = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        // Two growth rounds appending one token each; an untrained row
        // keeps its init bits, so identical streams would be visible as
        // identical rows. Each batch has < 2 usable tokens, so SGD never
        // runs and the init survives untouched.
        model.update(&[vec!["solo-a.example".to_string()]]);
        model.update(&[vec!["solo-b.example".to_string()]]);
        let ia = model.vocab().get("solo-a.example").unwrap();
        let ib = model.vocab().get("solo-b.example").unwrap();
        assert_ne!(model.vector(ia), model.vector(ib));
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let corpus = clustered_corpus(30);
        let a = SkipGram::train(&corpus, &SkipGramConfig::tiny()).unwrap();
        let cfg_b = SkipGramConfig {
            seed: 999,
            ..SkipGramConfig::tiny()
        };
        let b = SkipGram::train(&corpus, &cfg_b).unwrap();
        let ia = a.vocab().get("travel0").unwrap();
        let ib = b.vocab().get("travel0").unwrap();
        assert_ne!(a.vector(ia), b.vector(ib));
    }
}
