//! The differential conformance suite: oracle vs production across
//! multiple seeded worlds. CI runs this in both debug and `--release`
//! to catch debug_assert-only and codegen-dependent divergences.

use hostprof_oracle::driver::{differential_run, DriverConfig};
use hostprof_oracle::Stage;

#[test]
fn differential_suite_is_clean_across_seeds() {
    for seed in [1u64, 2, 3] {
        let report = differential_run(&DriverConfig {
            seed,
            perturb_embedding: None,
        });
        assert!(
            report.items_checked > 100,
            "seed {seed}: only {} comparisons ran",
            report.items_checked
        );
        assert!(report.is_clean(), "seed {seed}:\n{}", report.summary());
    }
}

#[test]
fn every_stage_actually_runs() {
    // A clean report proves nothing if a stage silently produced no
    // comparisons; count per-stage coverage on one seed by breaking the
    // run down. The driver doesn't expose per-stage counts for clean
    // items, so instead assert the perturbed run reports mismatches in
    // downstream stages (proof kNN/profile comparisons execute) while
    // the clean run has none.
    let clean = differential_run(&DriverConfig::default());
    assert!(clean.is_clean(), "{}", clean.summary());

    let sabotaged = differential_run(&DriverConfig {
        seed: 1,
        perturb_embedding: Some((4, 1e-3)),
    });
    assert!(!sabotaged.is_clean());
    assert_eq!(sabotaged.mismatches_in(Stage::Sni), 0);
    assert_eq!(sabotaged.mismatches_in(Stage::Window), 0);
    assert_eq!(sabotaged.mismatches_in(Stage::Train), 0);
    assert!(sabotaged.mismatches_in(Stage::Knn) + sabotaged.mismatches_in(Stage::Profile) > 0);
}

#[test]
fn mismatch_reports_carry_stage_item_and_deltas() {
    let sabotaged = differential_run(&DriverConfig {
        seed: 2,
        perturb_embedding: Some((0, 1e-3)),
    });
    assert!(!sabotaged.is_clean());
    let m = &sabotaged.mismatches[0];
    assert!(!m.item.is_empty());
    assert!(!m.detail.is_empty());
    // The 1e-3 nudge must be visible in the reported numeric deltas of
    // at least one mismatch.
    assert!(
        sabotaged
            .mismatches
            .iter()
            .any(|m| m.max_abs > 0.0 || m.max_ulp > 0),
        "{}",
        sabotaged.summary()
    );
}
