//! Passive flow tracking.
//!
//! An on-path observer must not re-parse every segment of a long-lived
//! connection: the hostname leaks exactly once, in the first client payload
//! (TLS ClientHello / QUIC Initial). [`FlowTable`] keys traffic by 5-tuple,
//! hands the *first* payload of each flow to the caller for inspection, and
//! swallows the rest — with idle-based eviction so memory stays bounded on
//! line-rate streams.

use crate::packet::{Endpoint, Packet, Transport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Flow identity: directional 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Client endpoint.
    pub src: Endpoint,
    /// Server endpoint.
    pub dst: Endpoint,
    /// Transport protocol.
    pub transport: Transport,
}

impl FlowKey {
    /// Key of a packet.
    pub fn of(pkt: &Packet) -> Self {
        Self {
            src: pkt.src,
            dst: pkt.dst,
            transport: pkt.transport,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    last_seen_ms: u64,
    packets: u64,
    bytes: u64,
    inspect: InspectState,
}

/// Where a flow stands in the inspection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InspectState {
    /// No payload seen yet (SYN/ACK-style empty segments).
    AwaitingFirst,
    /// Payload seen but the caller has not concluded inspection — a TLS
    /// ClientHello can span several TCP segments, so the observer keeps
    /// receiving payloads until it reassembles or gives up.
    Pending,
    /// Inspection concluded (hostname extracted, hidden, or unparseable).
    Done,
}

/// What the flow table tells the observer about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowDecision {
    /// First payload of a newly tracked flow: inspect it, discarding any
    /// state a previous occupant of the same 5-tuple left behind
    /// (ephemeral-port reuse after eviction).
    InspectNew,
    /// Payload of a flow already under inspection: feed it to the parser.
    Inspect,
    /// Empty segment, or a flow whose inspection already concluded.
    Skip,
}

/// Aggregate flow-table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Flows ever created.
    pub flows_created: u64,
    /// Flows evicted for idleness.
    pub flows_evicted: u64,
    /// Packets observed.
    pub packets: u64,
    /// Payload bytes observed.
    pub bytes: u64,
}

impl FlowStats {
    /// Fold another table's counters into this one: all fields are plain
    /// sums, so N per-lane flow tables merge into one aggregate view (the
    /// serving loop's taxonomy report depends on this).
    pub fn merge(&mut self, other: &FlowStats) {
        self.flows_created += other.flows_created;
        self.flows_evicted += other.flows_evicted;
        self.packets += other.packets;
        self.bytes += other.bytes;
    }

    /// [`merge`](Self::merge) over any number of per-lane stats.
    pub fn merged<'a, I: IntoIterator<Item = &'a FlowStats>>(lanes: I) -> FlowStats {
        let mut total = FlowStats::default();
        for s in lanes {
            total.merge(s);
        }
        total
    }
}

/// The observer's flow table.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowState>,
    idle_timeout_ms: u64,
    stats: FlowStats,
    /// Eviction is amortized: run at most once per `evict_every` packets.
    since_evict: u64,
    /// Keys evicted while still mid-inspection ([`InspectState::Pending`]),
    /// queued for the caller to reclaim any per-flow reassembly state it
    /// holds. Drained via [`FlowTable::take_evicted_pending`].
    evicted_pending: Vec<FlowKey>,
}

impl FlowTable {
    /// Create a table with the given idle timeout.
    pub fn new(idle_timeout_ms: u64) -> Self {
        Self {
            flows: HashMap::new(),
            idle_timeout_ms,
            stats: FlowStats::default(),
            since_evict: 0,
            evicted_pending: Vec::new(),
        }
    }

    /// Record a packet; returns whether its payload should be inspected.
    pub fn observe(&mut self, pkt: &Packet) -> FlowDecision {
        self.stats.packets += 1;
        self.stats.bytes += pkt.payload.len() as u64;
        self.since_evict += 1;
        if self.since_evict >= 1024 {
            self.evict_idle(pkt.t_ms);
            self.since_evict = 0;
        }
        let key = FlowKey::of(pkt);
        match self.flows.get_mut(&key) {
            Some(state) => {
                state.last_seen_ms = pkt.t_ms;
                state.packets += 1;
                state.bytes += pkt.payload.len() as u64;
                match state.inspect {
                    InspectState::Done => FlowDecision::Skip,
                    _ if pkt.payload.is_empty() => FlowDecision::Skip,
                    InspectState::AwaitingFirst => {
                        state.inspect = InspectState::Pending;
                        FlowDecision::InspectNew
                    }
                    InspectState::Pending => FlowDecision::Inspect,
                }
            }
            None => {
                self.stats.flows_created += 1;
                let inspect = if pkt.payload.is_empty() {
                    InspectState::AwaitingFirst
                } else {
                    InspectState::Pending
                };
                self.flows.insert(
                    key,
                    FlowState {
                        last_seen_ms: pkt.t_ms,
                        packets: 1,
                        bytes: pkt.payload.len() as u64,
                        inspect,
                    },
                );
                if inspect == InspectState::Pending {
                    FlowDecision::InspectNew
                } else {
                    FlowDecision::Skip
                }
            }
        }
    }

    /// Conclude inspection of a flow: later packets get [`FlowDecision::Skip`].
    pub fn finish(&mut self, key: &FlowKey) {
        if let Some(state) = self.flows.get_mut(key) {
            state.inspect = InspectState::Done;
        }
    }

    /// Drop flows idle since before `now_ms - idle_timeout_ms`.
    ///
    /// Flows evicted while a caller was still reassembling their first
    /// payload are recorded and surfaced by
    /// [`FlowTable::take_evicted_pending`], so the caller can release the
    /// matching reassembly buffers instead of leaking them.
    pub fn evict_idle(&mut self, now_ms: u64) {
        let cutoff = now_ms.saturating_sub(self.idle_timeout_ms);
        let before = self.flows.len();
        let evicted_pending = &mut self.evicted_pending;
        self.flows.retain(|key, s| {
            let keep = s.last_seen_ms >= cutoff;
            if !keep && s.inspect == InspectState::Pending {
                evicted_pending.push(*key);
            }
            keep
        });
        self.stats.flows_evicted += (before - self.flows.len()) as u64;
    }

    /// Whether any mid-inspection flows have been evicted since the last
    /// [`FlowTable::take_evicted_pending`] call. Cheap (a `Vec` emptiness
    /// check), so callers can poll it per packet.
    pub fn has_evicted_pending(&self) -> bool {
        !self.evicted_pending.is_empty()
    }

    /// Drain the keys of flows evicted mid-inspection.
    pub fn take_evicted_pending(&mut self) -> Vec<FlowKey> {
        std::mem::take(&mut self.evicted_pending)
    }

    /// Currently tracked flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }
}

impl Default for FlowTable {
    /// A table with a 5-minute idle timeout (a common middlebox default).
    fn default() -> Self {
        Self::new(300_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(t: u64, sport: u16, payload: &'static [u8]) -> Packet {
        Packet {
            t_ms: t,
            src: Endpoint::new(0x0a00_0001, sport),
            dst: Endpoint::new(0x0a00_0002, 443),
            transport: Transport::Tcp,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn payloads_are_fed_until_finished_then_skipped() {
        let mut t = FlowTable::default();
        let first = pkt(0, 5000, b"hel");
        assert_eq!(t.observe(&first), FlowDecision::InspectNew);
        // The caller has not concluded: keep feeding segments (TLS records
        // span TCP segments).
        assert_eq!(t.observe(&pkt(1, 5000, b"lo")), FlowDecision::Inspect);
        t.finish(&FlowKey::of(&first));
        assert_eq!(t.observe(&pkt(2, 5000, b"more")), FlowDecision::Skip);
        assert_eq!(t.active_flows(), 1);
        assert_eq!(t.stats().packets, 3);
        assert_eq!(t.stats().bytes, 9);
    }

    #[test]
    fn empty_segments_defer_inspection() {
        let mut t = FlowTable::default();
        assert_eq!(t.observe(&pkt(0, 5000, b"")), FlowDecision::Skip);
        assert_eq!(
            t.observe(&pkt(1, 5000, b"payload")),
            FlowDecision::InspectNew
        );
        // Empty mid-flow segments (pure ACKs) are skipped even while
        // inspection is pending.
        assert_eq!(t.observe(&pkt(2, 5000, b"")), FlowDecision::Skip);
    }

    #[test]
    fn different_five_tuples_are_different_flows() {
        let mut t = FlowTable::default();
        assert_eq!(t.observe(&pkt(0, 5000, b"a")), FlowDecision::InspectNew);
        assert_eq!(t.observe(&pkt(0, 5001, b"b")), FlowDecision::InspectNew);
        assert_eq!(t.active_flows(), 2);
        assert_eq!(t.stats().flows_created, 2);
    }

    #[test]
    fn finish_on_unknown_flow_is_a_noop() {
        let mut t = FlowTable::default();
        let ghost = pkt(0, 60_000, b"x");
        t.finish(&FlowKey::of(&ghost));
        assert_eq!(t.active_flows(), 0);
    }

    #[test]
    fn idle_flows_are_evicted_and_reinspected() {
        let mut t = FlowTable::new(1000);
        let p0 = pkt(0, 5000, b"a");
        assert_eq!(t.observe(&p0), FlowDecision::InspectNew);
        t.finish(&FlowKey::of(&p0));
        t.evict_idle(5000);
        assert_eq!(t.active_flows(), 0);
        assert_eq!(t.stats().flows_evicted, 1);
        // Same 5-tuple later is a fresh flow (port reuse).
        assert_eq!(t.observe(&pkt(6000, 5000, b"b")), FlowDecision::InspectNew);
    }

    #[test]
    fn mid_inspection_evictions_are_surfaced_for_cleanup() {
        let mut t = FlowTable::new(1000);
        // Flow A: inspection concluded before idling out → not surfaced.
        let done = pkt(0, 5000, b"a");
        t.observe(&done);
        t.finish(&FlowKey::of(&done));
        // Flow B: still mid-reassembly when it idles out → surfaced.
        let pending = pkt(0, 5001, b"partial");
        t.observe(&pending);
        // Flow C: never saw a payload (empty segments only) → not surfaced.
        t.observe(&pkt(0, 5002, b""));
        assert!(!t.has_evicted_pending());
        t.evict_idle(10_000);
        assert_eq!(t.active_flows(), 0);
        assert!(t.has_evicted_pending());
        assert_eq!(t.take_evicted_pending(), vec![FlowKey::of(&pending)]);
        assert!(!t.has_evicted_pending(), "drain empties the queue");
    }

    #[test]
    fn flow_stats_merge_sums_every_field() {
        let mut a = FlowTable::new(1000);
        a.observe(&pkt(0, 5000, b"abc"));
        a.observe(&pkt(1, 5001, b"de"));
        a.evict_idle(10_000);
        let mut b = FlowTable::default();
        b.observe(&pkt(0, 5002, b"fgh"));
        let merged = FlowStats::merged([&a.stats(), &b.stats()]);
        assert_eq!(merged.packets, 3);
        assert_eq!(merged.bytes, 8);
        assert_eq!(merged.flows_created, 3);
        assert_eq!(merged.flows_evicted, 2);
    }

    #[test]
    fn amortized_eviction_keeps_table_bounded() {
        let mut t = FlowTable::new(10);
        for i in 0..10_000u64 {
            // Every packet a new flow, each instantly idle.
            let p = Packet {
                t_ms: i * 100,
                src: Endpoint::new(1, (i % 60_000) as u16),
                dst: Endpoint::new(2, 443),
                transport: Transport::Udp,
                payload: Bytes::from_static(b"x"),
            };
            t.observe(&p);
        }
        assert!(
            t.active_flows() < 2048,
            "bounded by amortized eviction: {}",
            t.active_flows()
        );
    }
}
