//! Batch profiling input from columnar storage.
//!
//! [`SessionSource`] derives day-end sessions and SKIPGRAM training
//! corpora from anything implementing [`TraceAccess`] — the columnar
//! store or the legacy materialized trace — resolving interned host ids
//! to `&str` only at the [`Session`] boundary. No intermediate
//! `Vec<String>` is ever built, which is what keeps the 10⁶-user batch
//! pass allocation-free up to the sessions themselves.

use crate::session::Session;
use hostprof_ontology::Blocklist;
use hostprof_store::TraceAccess;

/// Day-oriented session extraction over a [`TraceAccess`].
pub struct SessionSource<'a, T: TraceAccess> {
    trace: &'a T,
    /// Session window length `T` (paper: 20 minutes).
    session_window_ms: u64,
    /// Day length (the trace generator's `DAY_MS`; parameterized so tests
    /// can shrink it).
    day_ms: u64,
}

impl<'a, T: TraceAccess> SessionSource<'a, T> {
    /// A source reading `trace` with the given window and day lengths.
    pub fn new(trace: &'a T, session_window_ms: u64, day_ms: u64) -> Self {
        Self {
            trace,
            session_window_ms,
            day_ms,
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &T {
        self.trace
    }

    /// The session ending at `user`'s last request of `day` — the batch
    /// pipeline's anchor rule. `None` when the user was idle that day;
    /// `scratch` is caller-provided so a sweep over a million users
    /// reuses one buffer.
    pub fn day_session(
        &self,
        user: u32,
        day: u32,
        blocklist: Option<&Blocklist>,
        scratch: &mut Vec<u32>,
    ) -> Option<Session> {
        let start = day as u64 * self.day_ms;
        let anchor = self.trace.last_time_in(user, start, start + self.day_ms)?;
        scratch.clear();
        self.trace
            .window_hosts(user, anchor, self.session_window_ms, scratch);
        Some(Session::from_window(
            scratch.iter().map(|&h| self.trace.host_name(h)),
            blocklist,
        ))
    }

    /// Day-end sessions for every user active on `day`, ascending by
    /// user id, empty-after-filtering sessions included (the profiler
    /// skips them but the counts stay honest).
    pub fn day_sessions(&self, day: u32, blocklist: Option<&Blocklist>) -> Vec<(u32, Session)> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for user in 0..self.trace.num_users() as u32 {
            if let Some(s) = self.day_session(user, day, blocklist, &mut scratch) {
                out.push((user, s));
            }
        }
        out
    }

    /// Per-user hostname sequences for `day` — the SKIPGRAM training
    /// corpus, borrowing names straight out of the trace's hostname
    /// table. Idle users are omitted.
    pub fn train_sequences(&self, day: u32) -> Vec<Vec<&'a str>> {
        let start = day as u64 * self.day_ms;
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for user in 0..self.trace.num_users() as u32 {
            ids.clear();
            self.trace
                .span_hosts(user, start, start + self.day_ms, &mut ids);
            if !ids.is_empty() {
                out.push(ids.iter().map(|&h| self.trace.host_name(h)).collect());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built TraceAccess: two users, fixed events.
    struct Fixed {
        names: Vec<&'static str>,
        events: Vec<Vec<(u64, u32)>>,
    }

    impl TraceAccess for Fixed {
        fn num_users(&self) -> usize {
            self.events.len()
        }
        fn num_events(&self) -> usize {
            self.events.iter().map(Vec::len).sum()
        }
        fn days(&self) -> u32 {
            2
        }
        fn host_name(&self, host: u32) -> &str {
            self.names[host as usize]
        }
        fn window_hosts(&self, user: u32, end_ms: u64, duration_ms: u64, out: &mut Vec<u32>) {
            let lo = end_ms.saturating_sub(duration_ms);
            for &(t, h) in &self.events[user as usize] {
                let in_lo = match end_ms.checked_sub(duration_ms) {
                    None => true,
                    Some(0) if duration_ms > 0 => true,
                    Some(start) => t > start,
                };
                let _ = lo;
                if in_lo && t <= end_ms {
                    out.push(h);
                }
            }
        }
        fn span_hosts(&self, user: u32, start_ms: u64, end_ms: u64, out: &mut Vec<u32>) {
            for &(t, h) in &self.events[user as usize] {
                if t >= start_ms && t < end_ms {
                    out.push(h);
                }
            }
        }
        fn last_time_in(&self, user: u32, start_ms: u64, end_ms: u64) -> Option<u64> {
            self.events[user as usize]
                .iter()
                .filter(|(t, _)| *t >= start_ms && *t < end_ms)
                .map(|(t, _)| *t)
                .next_back()
        }
    }

    fn fixture() -> Fixed {
        Fixed {
            names: vec!["a.example", "b.example", "c.example"],
            // day_ms = 1000 in tests.
            events: vec![
                vec![(100, 0), (150, 1), (150, 0), (900, 2)],
                vec![(1100, 2), (1200, 2)],
            ],
        }
    }

    #[test]
    fn day_session_anchors_at_last_event_and_dedups() {
        let f = fixture();
        let src = SessionSource::new(&f, 850, 1000);
        let mut scratch = Vec::new();
        // User 0, day 0: anchor 900, window (50, 900] = all four events,
        // first-visit dedup keeps a, b, c.
        let s = src.day_session(0, 0, None, &mut scratch).unwrap();
        assert_eq!(s.hostnames(), &["a.example", "b.example", "c.example"]);
        // User 0 is idle on day 1.
        assert!(src.day_session(0, 1, None, &mut scratch).is_none());
        // User 1, day 1: anchor 1200, window (350, 1200].
        let s = src.day_session(1, 1, None, &mut scratch).unwrap();
        assert_eq!(s.hostnames(), &["c.example"]);
    }

    #[test]
    fn day_sessions_cover_active_users_in_order() {
        let f = fixture();
        let src = SessionSource::new(&f, 850, 1000);
        let day0 = src.day_sessions(0, None);
        assert_eq!(day0.len(), 1);
        assert_eq!(day0[0].0, 0);
        let day1 = src.day_sessions(1, None);
        assert_eq!(day1.len(), 1);
        assert_eq!(day1[0].0, 1);
    }

    #[test]
    fn train_sequences_keep_duplicates_and_borrow_names() {
        let f = fixture();
        let src = SessionSource::new(&f, 850, 1000);
        let seqs = src.train_sequences(0);
        assert_eq!(
            seqs,
            vec![vec!["a.example", "b.example", "a.example", "c.example"]]
        );
        let seqs = src.train_sequences(1);
        assert_eq!(seqs, vec![vec!["c.example", "c.example"]]);
    }
}
