//! Ad-selection latency: the eavesdropper's 20-NN pick over `H_L`
//! (Section 5.4) and the ad-network's serving mix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hostprof_ads::eavesdropper::SelectorConfig;
use hostprof_ads::{AdDatabase, AdNetwork, AdNetworkConfig, EavesdropperSelector};
use hostprof_synth::{HostKind, Population, PopulationConfig, UserId, World, WorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_selection(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::default());
    let db = AdDatabase::generate(&world, 12_000, 5);
    let selector = EavesdropperSelector::new(&db, world.ontology(), SelectorConfig::default());
    // A profile to select against: a labeled host's categories.
    let (_, probe) = world.ontology().iter().next().expect("labels exist");

    c.bench_function(
        &format!("eavesdropper_select_20_of_{}", selector.pool_size()),
        |b| b.iter(|| selector.select(black_box(probe)).len()),
    );
}

fn bench_network_serving(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::default());
    let db = AdDatabase::generate(&world, 12_000, 5);
    let pop = Population::generate(&world, &PopulationConfig::tiny());
    let mut network = AdNetwork::new(AdNetworkConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let site = world
        .hosts()
        .iter()
        .find(|h| h.kind == HostKind::Site)
        .unwrap()
        .id;
    // Warm the cookie profile so every serving path is reachable.
    for _ in 0..100 {
        network.observe_visit(&mut rng, &world, UserId(0), site);
    }
    let _ = pop;

    c.bench_function("ad_network_serve", |b| {
        b.iter(|| {
            network
                .serve(&mut rng, &world, &db, UserId(0), site)
                .unwrap()
                .0
        })
    });
    c.bench_function("ad_network_observe_visit", |b| {
        b.iter(|| network.observe_visit(&mut rng, &world, UserId(0), site))
    });
}

criterion_group!(benches, bench_selection, bench_network_serving);
criterion_main!(benches);
