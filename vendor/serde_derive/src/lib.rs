//! Derive macros for the in-tree `serde` subset.
//!
//! The container has no crates.io access, so this crate parses the derive
//! input by walking the raw [`TokenStream`] (no `syn`/`quote`) and emits
//! impls of the value-tree `Serialize`/`Deserialize` traits. Supported
//! shapes — the only ones this workspace uses — are named-field structs,
//! tuple structs, and enums with unit / named-field / tuple variants, with
//! the externally-tagged layout real serde uses for JSON.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Named {
        name: String,
        fields: Vec<Field>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
        /// `#[serde(rename_all = "lowercase")]` on the container.
        lowercase: bool,
    },
}

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing map entry becomes `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// Collect `#[attr]` bodies (whitespace-stripped) and skip a `pub` /
/// `pub(...)` visibility prefix.
fn collect_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut attrs = Vec::new();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        attrs.push(
                            g.stream()
                                .to_string()
                                .chars()
                                .filter(|c| !c.is_whitespace())
                                .collect(),
                        );
                        *i += 1;
                    }
                    other => panic!("expected attribute body, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return attrs,
        }
    }
}

/// Skip `#[attr]` sequences and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    let _ = collect_attrs_and_vis(tokens, i);
}

/// Whether a whitespace-stripped `serde(...)` attribute carries `flag`
/// (e.g. `default` or `rename_all="lowercase"`) in its comma list.
fn has_serde_flag(attrs: &[String], flag: &str) -> bool {
    attrs.iter().any(|a| {
        a.strip_prefix("serde(")
            .and_then(|rest| rest.strip_suffix(')'))
            .is_some_and(|body| body.split(',').any(|part| part == flag))
    })
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Advance past one type, stopping after a depth-0 `,` (or at end of input).
/// Depth tracks `<`/`>` pairs; delimiter groups are single atomic tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Fields of a `{ ... }` body, with their `#[serde(default)]` flags.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = collect_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default: has_serde_flag(&attrs, "default"),
        });
    }
    fields
}

/// Number of fields in a `( ... )` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
    }
    arity
}

fn parse_enum_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = collect_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generic type `{name}` not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            },
            _ => Shape::Unit { name },
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_enum_variants(tokens[i].clone().into_token_stream_brace()),
            lowercase: has_serde_flag(&container_attrs, "rename_all=\"lowercase\""),
        },
        other => panic!("derive(Serialize/Deserialize): unsupported item `{other}`"),
    }
}

/// Helper to unwrap the brace group of an enum body.
trait IntoBraceStream {
    fn into_token_stream_brace(self) -> TokenStream;
}
impl IntoBraceStream for TokenTree {
    fn into_token_stream_brace(self) -> TokenStream {
        match self {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body, found {other:?}"),
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let entries: String = (0..arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unit { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum {
            name,
            variants,
            lowercase,
        } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tag = if lowercase {
                        vname.to_lowercase()
                    } else {
                        vname.clone()
                    };
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{tag}\")),"
                        ),
                        VariantKind::Named(fields) => {
                            let pat = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pat} }} => ::serde::Value::Map(vec![(\
                                     String::from(\"{tag}\"), \
                                     ::serde::Value::Map(vec![{entries}])\
                                 )]),"
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\
                                 String::from(\"{tag}\"), \
                                 ::serde::Serialize::to_value(__f0)\
                             )]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let pat: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                            let entries: String = pat
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                                     String::from(\"{tag}\"), \
                                     ::serde::Value::Seq(vec![{entries}])\
                                 )]),",
                                pat.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl should parse")
}

/// Field initializers for a named-field body deserialized from `{map}`:
/// plain fields hard-error when missing, `#[serde(default)]` fields fall
/// back to `Default::default()`.
fn named_field_inits(fields: &[Field], map: &str, context: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.default {
                format!(
                    "{fname}: match ::serde::map_get({map}, \"{fname}\", \"{context}\") {{\
                         ::std::result::Result::Ok(__fv) => ::serde::Deserialize::from_value(__fv)?,\
                         ::std::result::Result::Err(_) => ::std::default::Default::default(),\
                     }},"
                )
            } else {
                format!(
                    "{fname}: ::serde::Deserialize::from_value(\
                         ::serde::map_get({map}, \"{fname}\", \"{context}\")?\
                     )?,"
                )
            }
        })
        .collect()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let inits = named_field_inits(&fields, "__map", &name);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __map = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let inits: String = (0..arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__seq[{k}])?,"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                         if __seq.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"array of length {arity}\", \"{name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unit { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match __v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok(Self),\n\
                         _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", \"{name}\")),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Shape::Enum {
            name,
            variants,
            lowercase,
        } => {
            let tag_of = |vname: &str| {
                if lowercase {
                    vname.to_lowercase()
                } else {
                    vname.to_string()
                }
            };
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}),",
                        tag = tag_of(&v.name),
                        vname = v.name
                    )
                })
                .collect();
            let str_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},"
                )
            };
            let tag_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let tag = tag_of(vname);
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let inits =
                                named_field_inits(fields, "__inner", &format!("{name}::{vname}"));
                            Some(format!(
                                "\"{tag}\" => {{\n\
                                     let __inner = __payload.as_map().ok_or_else(|| \
                                         ::serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{tag}\" => ::std::result::Result::Ok(\
                                 {name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: String = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&__inner[{k}])?,"))
                                .collect();
                            Some(format!(
                                "\"{tag}\" => {{\n\
                                     let __inner = __payload.as_seq().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                                     if __inner.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::expected(\
                                             \"array of length {arity}\", \"{name}::{vname}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            let map_arm = if tag_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {tag_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},"
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             {str_arm}\n\
                             {map_arm}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\
                                 \"externally tagged variant\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl should parse")
}
