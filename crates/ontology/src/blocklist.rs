//! Tracker / advertiser hostname blocklists.
//!
//! Section 5.4 of the paper: roughly 50 of the top-100 hostnames belonged to
//! advertising or tracking companies; these were removed from profiling input
//! because they "add noise without providing any valuable information about
//! the interests of a user". The paper used three public lists —
//! adaway.org, hosts-file.net and yoyo.org — which matched ~3 K distinct
//! hostnames and ~8 % of all observed connections (6.1 M of 75 M).
//!
//! [`Blocklist`] is the union of several [`BlocklistProvider`]s with
//! suffix-aware matching: blocking `doubleclick.net` also blocks
//! `stats.g.doubleclick.net`, matching how hosts-file deployments behave for
//! tracker eTLD+1 entries in practice.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One published blocklist (e.g. the adaway.org hosts file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlocklistProvider {
    /// Human-readable provider name.
    pub name: String,
    hosts: HashSet<String>,
}

impl BlocklistProvider {
    /// Create a provider from an iterator of hostnames (lowercased on
    /// insert).
    pub fn new<I, S>(name: &str, hosts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            name: name.to_string(),
            hosts: hosts
                .into_iter()
                .map(|h| h.as_ref().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Number of hostnames on this list.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Exact-match membership (no suffix logic at the provider level).
    pub fn contains(&self, hostname: &str) -> bool {
        self.hosts.contains(&hostname.to_ascii_lowercase())
    }

    /// Iterate over the hostnames on this list.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.hosts.iter().map(String::as_str)
    }
}

/// The union of several providers, as the paper combined three lists.
///
/// ```
/// use hostprof_ontology::{Blocklist, BlocklistProvider};
/// let b = Blocklist::from_providers(vec![
///     BlocklistProvider::new("adaway-like", ["doubleclick.net"]),
/// ]);
/// assert!(b.is_blocked("stats.g.doubleclick.net"));
/// assert!(!b.is_blocked("espn.com"));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blocklist {
    providers: Vec<BlocklistProvider>,
    /// Deduplicated union of every provider's hostnames.
    union: HashSet<String>,
}

impl Blocklist {
    /// An empty blocklist (blocks nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from providers, precomputing the union.
    pub fn from_providers(providers: Vec<BlocklistProvider>) -> Self {
        let mut union = HashSet::new();
        for p in &providers {
            union.extend(p.iter().map(str::to_string));
        }
        Self { providers, union }
    }

    /// Providers in this blocklist.
    pub fn providers(&self) -> &[BlocklistProvider] {
        &self.providers
    }

    /// Number of distinct blocked hostnames across all providers.
    pub fn len(&self) -> usize {
        self.union.len()
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.union.is_empty()
    }

    /// Whether `hostname` is blocked, either exactly or because a parent
    /// domain is listed (`ads.x.com` is blocked when `x.com` is listed).
    pub fn is_blocked(&self, hostname: &str) -> bool {
        let lower = hostname.to_ascii_lowercase();
        let mut rest = lower.as_str();
        loop {
            if self.union.contains(rest) {
                return true;
            }
            match rest.find('.') {
                // Require at least one dot in the candidate suffix so a
                // listed "com" cannot block the entire universe.
                Some(i) if rest[i + 1..].contains('.') => rest = &rest[i + 1..],
                _ => return false,
            }
        }
    }

    /// Partition a connection stream: returns `(blocked, passed)` counts.
    /// This regenerates the paper's "6.1 M of 75 M connections (≈8 %)"
    /// measurement.
    pub fn filter_stats<'a, I>(&self, connections: I) -> FilterStats
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut stats = FilterStats::default();
        let mut blocked_hosts = HashSet::new();
        for h in connections {
            if self.is_blocked(h) {
                stats.blocked_connections += 1;
                blocked_hosts.insert(h.to_ascii_lowercase());
            } else {
                stats.passed_connections += 1;
            }
        }
        stats.blocked_hostnames = blocked_hosts.len();
        stats
    }
}

/// Result of running a connection stream through a [`Blocklist`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Connections to blocked hostnames.
    pub blocked_connections: usize,
    /// Connections that passed the filter.
    pub passed_connections: usize,
    /// Distinct blocked hostnames seen in the stream.
    pub blocked_hostnames: usize,
}

impl FilterStats {
    /// Fraction of connections that were blocked.
    pub fn blocked_fraction(&self) -> f64 {
        let total = self.blocked_connections + self.passed_connections;
        if total == 0 {
            0.0
        } else {
            self.blocked_connections as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Blocklist {
        Blocklist::from_providers(vec![
            BlocklistProvider::new("adaway", ["doubleclick.net", "adnxs.com"]),
            BlocklistProvider::new("hphosts", ["adnxs.com", "tracker.example.org"]),
            BlocklistProvider::new("yoyo", ["scorecardresearch.com"]),
        ])
    }

    #[test]
    fn union_deduplicates_across_providers() {
        let b = sample();
        assert_eq!(b.len(), 4, "adnxs.com appears on two lists but counts once");
        assert_eq!(b.providers().len(), 3);
    }

    #[test]
    fn exact_and_subdomain_matches_block() {
        let b = sample();
        assert!(b.is_blocked("doubleclick.net"));
        assert!(b.is_blocked("stats.g.doubleclick.net"));
        assert!(b.is_blocked("Tracker.Example.ORG"));
        assert!(
            !b.is_blocked("example.org"),
            "parent of a listed host is not blocked"
        );
        assert!(!b.is_blocked("news.example.com"));
    }

    #[test]
    fn tld_entries_do_not_block_everything() {
        let b = Blocklist::from_providers(vec![BlocklistProvider::new("weird", ["net"])]);
        assert!(!b.is_blocked("example.net"));
        assert!(!b.is_blocked("a.b.net"));
    }

    #[test]
    fn filter_stats_counts_connections_and_hosts() {
        let b = sample();
        let stream = [
            "doubleclick.net",
            "ads.doubleclick.net",
            "news.site.com",
            "adnxs.com",
            "news.site.com",
        ];
        let s = b.filter_stats(stream.iter().copied());
        assert_eq!(s.blocked_connections, 3);
        assert_eq!(s.passed_connections, 2);
        assert_eq!(s.blocked_hostnames, 3);
        assert!((s.blocked_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_blocklist_blocks_nothing() {
        let b = Blocklist::new();
        assert!(!b.is_blocked("doubleclick.net"));
        assert_eq!(
            b.filter_stats(["a.com"].iter().copied())
                .blocked_connections,
            0
        );
    }
}
