//! Offline in-tree subset of `serde`.
//!
//! The workspace builds in a sealed container without crates.io access, so
//! serialization is vendored as a small self-describing value tree: types
//! convert to and from [`Value`], and `serde_json` renders/parses that
//! tree. The `#[derive(Serialize, Deserialize)]` macros (feature `derive`)
//! generate externally-tagged representations compatible with real serde's
//! JSON output for the shapes this workspace uses (named structs, newtype
//! ids, unit/struct enum variants).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view widened to f64 (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned view (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// Signed view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing Y" helper used by generated code.
    pub fn expected(what: &str, context: &str) -> Self {
        Self {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// `serde::de` namespace for `DeserializeOwned` imports.
pub mod de {
    /// Marker alias: every [`crate::Deserialize`] here is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// A value tree serializes to itself, so generic JSON records (e.g. the
/// bench harness's generation-stamped results) can pass through the same
/// `to_string_pretty` / `from_str` entry points as derived structs.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Fetch a required struct field from a map (generated-code helper).
pub fn map_get<'a>(
    map: &'a [(String, Value)],
    key: &str,
    context: &str,
) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}` in {context}")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 || v <= i64::MAX as i128 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match *v {
                    Value::I64(x) => x as i128,
                    Value::U64(x) => x as i128,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(out)
                    .map_err(|_| DeError::custom(format!("{out} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // f32 -> f64 -> f32 is exact, so roundtrips preserve bits.
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "tuple length {} != {expected}", seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?;
        map.iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort elements so output is deterministic across runs.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "HashSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?;
        map.iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

/// JSON object keys must be strings; render a key's value tree as one.
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::I64(v) => v.to_string(),
        Value::U64(v) => v.to_string(),
        Value::F64(v) => v.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key kind: {}", other.kind()),
    }
}

/// Parse a string key back into the key type via the value tree.
fn key_from_string<K: Deserialize>(k: &str) -> Result<K, DeError> {
    if let Ok(v) = K::from_value(&Value::Str(k.to_owned())) {
        return Ok(v);
    }
    if let Ok(n) = k.parse::<i64>() {
        if let Ok(v) = K::from_value(&Value::I64(n)) {
            return Ok(v);
        }
    }
    if let Ok(n) = k.parse::<u64>() {
        if let Ok(v) = K::from_value(&Value::U64(n)) {
            return Ok(v);
        }
    }
    if let Ok(n) = k.parse::<f64>() {
        if let Ok(v) = K::from_value(&Value::F64(n)) {
            return Ok(v);
        }
    }
    Err(DeError::custom(format!("cannot parse map key `{k}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hé\"llo");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xbf99_999a] {
            let x = f32::from_bits(bits);
            let back = f32::from_value(&x.to_value()).unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 0.5f32), (7, 0.25)];
        let back: Vec<(u32, f32)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        let back: HashMap<String, u64> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::I64(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
