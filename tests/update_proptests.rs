//! Differential property tests for the online-update path (DESIGN.md
//! §14): 500 seeded cases per property, production `SkipGram::update`
//! vs the naive `oracle::update` reference. Same homemade persistence
//! scheme as `differential_proptests.rs`: every case derives from a
//! printable 16-hex-digit seed, failures panic with that seed, and
//! `tests/regressions/update_proptests.txt` holds previously failing
//! seeds (`cc <seed> # note` lines) replayed *first* on every run.
//!
//! Three properties, one per update invariant:
//!
//! 1. **Vocabulary growth** — counts, append order, keep-probabilities
//!    and the running total all match the naive reference, and an id
//!    handed out before the growth never moves.
//! 2. **Incremental SGD** — the full {train → update…} schedule is
//!    bit-identical to the oracle at one thread with the scalar kernel;
//!    any divergence comes back stage-attributed (`[update] batch2/...`).
//! 3. **Multi-round stability** — across several updates ids stay
//!    append-only, and replaying the identical schedule from scratch
//!    reproduces every weight bit (the extension-init stream is keyed,
//!    not global).

use hostprof::embed::{KernelChoice, Sharding, SkipGram, SkipGramConfig, Vocab};
use hostprof_oracle::sgd::{build_vocab, SgdConfig};
use hostprof_oracle::update::{diff_online, grow_vocab};

const CASES: usize = 500;

/// splitmix64: the per-case parameter stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case seed `i` of a property's deterministic 500-seed schedule.
fn case_seed(property: u64, i: usize) -> u64 {
    let mut s = property
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(i as u64);
    splitmix(&mut s)
}

/// Previously failing seeds, replayed before the fresh schedule.
/// Line format: `cc 0123456789abcdef # what broke`.
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/update_proptests.txt"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("regression seed file {path} unreadable: {e}"));
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let hex = rest.split_whitespace().next().unwrap_or("");
        let seed = u64::from_str_radix(hex, 16)
            .unwrap_or_else(|e| panic!("bad regression seed {hex:?} in {path}: {e}"));
        seeds.push(seed);
    }
    assert!(
        !seeds.is_empty(),
        "no `cc <seed>` entries in {path} — the regression net is gone"
    );
    seeds
}

/// All seeds a property runs: regressions first, then the schedule.
fn schedule(property: u64) -> Vec<u64> {
    let mut seeds = regression_seeds();
    seeds.extend((0..CASES).map(|i| case_seed(property, i)));
    seeds
}

/// A random hostname corpus drawn from a host-id range: sequence count,
/// lengths, and the per-token host draw all come off the case stream.
/// Offsetting `host_range` between the base corpus and the update
/// batches is what makes growth happen (or not).
fn corpus(rng: &mut u64, nseqs: usize, host_lo: u64, host_hi: u64) -> Vec<Vec<String>> {
    (0..nseqs)
        .map(|_| {
            let len = 2 + (splitmix(rng) % 7) as usize;
            (0..len)
                .map(|_| {
                    let h = host_lo + splitmix(rng) % (host_hi - host_lo).max(1);
                    format!("host{h}.test")
                })
                .collect()
        })
        .collect()
}

fn sgd_config(rng: &mut u64, seed: u64) -> SgdConfig {
    SgdConfig {
        // dim ≤ 3 keeps the scalar kernel on its bit-pinned tail path.
        dim: 2 + (splitmix(rng) % 2) as usize,
        window: 1 + (splitmix(rng) % 3) as usize,
        negatives: 1 + (splitmix(rng) % 3) as usize,
        epochs: 1 + (splitmix(rng) % 2) as u32,
        learning_rate: 0.025,
        min_count: 1 + splitmix(rng) % 2,
        subsample: if splitmix(rng).is_multiple_of(3) {
            0.05
        } else {
            0.0
        },
        seed,
    }
}

fn production_config(cfg: &SgdConfig) -> SkipGramConfig {
    SkipGramConfig {
        dim: cfg.dim,
        window: cfg.window,
        negatives: cfg.negatives,
        epochs: cfg.epochs as usize,
        learning_rate: cfg.learning_rate,
        min_count: cfg.min_count,
        subsample: cfg.subsample,
        threads: 1,
        seed: cfg.seed,
        kernel: KernelChoice::Scalar,
        sharding: Sharding::Static,
    }
}

// ---------------------------------------------------------------------
// Property 1: vocabulary growth — production Vocab::grow vs the oracle's
// linear-scan reference, plus id stability of every pre-growth token.
// ---------------------------------------------------------------------

#[test]
fn vocab_growth_matches_oracle_on_500_seeded_cases() {
    for seed in schedule(0x0bca_b670) {
        let mut rng = seed;
        let base_seqs = 3 + (splitmix(&mut rng) % 6) as usize;
        let base = corpus(&mut rng, base_seqs, 0, 12);
        // The batch overlaps the base range and reaches past it, so every
        // case exercises both count-bumping and appending; occasionally
        // it stays fully inside (no growth at all).
        let reach = if splitmix(&mut rng).is_multiple_of(4) {
            12
        } else {
            12 + splitmix(&mut rng) % 20
        };
        let batch_seqs = 2 + (splitmix(&mut rng) % 5) as usize;
        let batch = corpus(&mut rng, batch_seqs, 4, reach.max(5));
        let min_count = 1 + splitmix(&mut rng) % 2;
        let subsample = if splitmix(&mut rng).is_multiple_of(2) {
            0.01
        } else {
            0.0
        };

        let mut oracle = build_vocab(&base, min_count, subsample);
        let mut prod = Vocab::build(
            base.iter().map(|s| s.iter().map(|t| t.as_str())),
            min_count,
            subsample,
        );
        let before: Vec<String> = oracle.tokens.clone();
        let cc = format!("add `cc {seed:016x}` to tests/regressions/update_proptests.txt");

        let oa = grow_vocab(&mut oracle, &batch, min_count, subsample);
        let pa = prod.grow(
            batch.iter().map(|s| s.iter().map(|t| t.as_str())),
            min_count,
            subsample,
        );
        assert_eq!(oa, pa, "appended counts diverged — {cc}");
        assert_eq!(oracle.tokens.len(), prod.len(), "vocab size — {cc}");
        assert_eq!(oracle.total, prod.total_count(), "total count — {cc}");
        for i in 0..prod.len() as u32 {
            assert_eq!(
                oracle.tokens[i as usize],
                prod.token(i),
                "token at id {i} — {cc}"
            );
            assert_eq!(
                oracle.counts[i as usize],
                prod.count(i),
                "count at id {i} — {cc}"
            );
            assert_eq!(
                oracle.keep[i as usize].to_bits(),
                prod.keep_prob(i).to_bits(),
                "keep probability at id {i} — {cc}"
            );
        }
        for (i, tok) in before.iter().enumerate() {
            assert_eq!(
                prod.token(i as u32),
                tok.as_str(),
                "id {i} moved during growth — {cc}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property 2: the full online schedule — {train → update → update…}
// bit-identical to the oracle, mismatches stage-attributed.
// ---------------------------------------------------------------------

#[test]
fn incremental_sgd_matches_oracle_on_500_seeded_cases() {
    for seed in schedule(0x5d60_0bda) {
        let mut rng = seed;
        let cfg = sgd_config(&mut rng, seed);
        let initial_seqs = 4 + (splitmix(&mut rng) % 5) as usize;
        let initial = corpus(&mut rng, initial_seqs, 0, 10);
        let nbatches = 1 + (splitmix(&mut rng) % 2) as usize;
        let batches: Vec<Vec<Vec<String>>> = (0..nbatches)
            .map(|b| {
                let lo = 3 * b as u64;
                let hi = 10 + 6 * (b as u64 + 1);
                let nseqs = 2 + (splitmix(&mut rng) % 4) as usize;
                corpus(&mut rng, nseqs, lo, hi)
            })
            .collect();

        let report = diff_online(&initial, &batches, &cfg);
        assert!(
            report.is_clean(),
            "online schedule diverged — add `cc {seed:016x}` to \
             tests/regressions/update_proptests.txt\n{}",
            report.summary()
        );
        assert!(report.items_checked > 0, "nothing compared for {seed:016x}");
    }
}

// ---------------------------------------------------------------------
// Property 3: multi-round id stability and schedule replayability on
// the production trainer alone — ids append-only across rounds, and an
// identical from-scratch replay of the whole schedule lands on the same
// bits (keyed extension-init streams, not a shared global one).
// ---------------------------------------------------------------------

#[test]
fn multi_round_updates_keep_ids_stable_and_replay_bitwise_on_500_seeded_cases() {
    for seed in schedule(0x1d57_ab1e) {
        let mut rng = seed;
        let cfg = sgd_config(&mut rng, seed);
        let prod_cfg = production_config(&cfg);
        let initial_seqs = 4 + (splitmix(&mut rng) % 4) as usize;
        let initial = corpus(&mut rng, initial_seqs, 0, 8);
        let rounds: Vec<Vec<Vec<String>>> = (0..3)
            .map(|b| {
                let hi = 8 + 5 * (b as u64 + 1);
                let nseqs = 2 + (splitmix(&mut rng) % 3) as usize;
                corpus(&mut rng, nseqs, 0, hi)
            })
            .collect();
        let cc = format!("add `cc {seed:016x}` to tests/regressions/update_proptests.txt");

        let Ok(mut model) = SkipGram::train(&initial, &prod_cfg) else {
            // Degenerate corpus for this seed; the schedule covers it via
            // property 2's rejection mirror.
            continue;
        };
        for (round, batch) in rounds.iter().enumerate() {
            let before: Vec<String> = (0..model.vocab().len() as u32)
                .map(|i| model.vocab().token(i).to_string())
                .collect();
            let report = model.update(batch);
            assert!(
                model.vocab().len() == before.len() + report.appended_tokens,
                "round {round}: growth is not append-only — {cc}"
            );
            for (i, tok) in before.iter().enumerate() {
                assert_eq!(
                    model.vocab().token(i as u32),
                    tok.as_str(),
                    "round {round}: id {i} moved — {cc}"
                );
            }
        }

        // From-scratch replay of the identical schedule.
        let mut replay = SkipGram::train(&initial, &prod_cfg).expect("replay train");
        for batch in &rounds {
            replay.update(batch);
        }
        assert_eq!(
            replay.vocab().len(),
            model.vocab().len(),
            "replay vocab — {cc}"
        );
        for i in 0..model.vocab().len() as u32 {
            assert_eq!(
                model.vector(i),
                replay.vector(i),
                "replayed input row {i} diverged — {cc}"
            );
            assert_eq!(
                model.context_vector(i),
                replay.context_vector(i),
                "replayed context row {i} diverged — {cc}"
            );
        }
    }
}
