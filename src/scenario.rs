//! Scenario bundles: world + population + trace + ad inventory.
//!
//! Every experiment binary, example and integration test needs the same
//! setup dance; [`Scenario`] packages it with three presets ([`tiny`],
//! [`default`], [`paper month`]) so the knobs that matter (scale, days,
//! seeds) live in one place.
//!
//! [`tiny`]: ScenarioConfig::tiny
//! [`default`]: ScenarioConfig::default
//! [`paper month`]: ScenarioConfig::paper_month

use hostprof_ads::AdDatabase;
use hostprof_core::{Pipeline, PipelineConfig};
use hostprof_embed::SkipGramConfig;
use hostprof_synth::{
    Population, PopulationConfig, Trace, TraceConfig, UserId, World, WorldConfig,
};
use serde::{Deserialize, Serialize};

/// All generator knobs in one place.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Hostname-universe configuration.
    pub world: WorldConfig,
    /// Population configuration.
    pub population: PopulationConfig,
    /// Trace configuration.
    pub trace: TraceConfig,
    /// Ad inventory size (paper: ~12 K after filtering).
    pub num_ads: usize,
    /// Ad-generation seed.
    pub ads_seed: u64,
    /// Profiling back-end configuration.
    pub pipeline: PipelineConfig,
}

impl Default for ScenarioConfig {
    /// The laptop-scale model of the paper's deployment used by the
    /// experiment binaries: 3 K+ hostnames, 400 users, 30 days, 12 K ads.
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            population: PopulationConfig::default(),
            trace: TraceConfig::default(),
            num_ads: 12_000,
            ads_seed: 0x5eed_0ad5,
            pipeline: PipelineConfig::default(),
        }
    }
}

impl ScenarioConfig {
    /// Miniature everything: fast enough for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            world: WorldConfig::tiny(),
            population: PopulationConfig::tiny(),
            trace: TraceConfig::tiny(),
            num_ads: 600,
            pipeline: PipelineConfig {
                skipgram: SkipGramConfig {
                    dim: 24,
                    epochs: 4,
                    subsample: 0.0,
                    ..SkipGramConfig::default()
                },
                // N = 1000 assumes the paper's 470 K-host space; scale it
                // to the tiny vocabulary (~0.5 K hosts).
                profiler: hostprof_core::ProfilerConfig {
                    n_neighbors: 50,
                    ..Default::default()
                },
                ..PipelineConfig::default()
            },
            ..Self::default()
        }
    }

    /// The evaluation scale the recorded EXPERIMENTS.md runs use: 200
    /// users, 12 days, ~3.7 K hostnames, 4 K ads, with the kNN size scaled
    /// to the vocabulary (DESIGN.md §4.1). Single source of truth for the
    /// bench harness's `HOSTPROF_SCALE=small` and the CLI's `--scale small`.
    pub fn small() -> Self {
        Self {
            world: WorldConfig {
                num_sites: 1200,
                num_cdns: 900,
                num_apis: 1300,
                num_trackers: 280,
                ..WorldConfig::default()
            },
            population: PopulationConfig {
                num_users: 200,
                ..PopulationConfig::default()
            },
            trace: TraceConfig {
                days: 12,
                ..TraceConfig::default()
            },
            num_ads: 4_000,
            pipeline: PipelineConfig {
                skipgram: SkipGramConfig {
                    dim: 64,
                    epochs: 4,
                    ..SkipGramConfig::default()
                },
                profiler: hostprof_core::ProfilerConfig {
                    n_neighbors: 300,
                    ..Default::default()
                },
                ..PipelineConfig::default()
            },
            ..Self::default()
        }
    }

    /// The million-user / 10⁵-vocabulary tier (DESIGN.md §13): two days,
    /// ~103 K hostnames, 10⁶ users. This preset is only meant to be
    /// consumed through the columnar streaming path
    /// (`hostprof_synth::generate_columnar`) — `Scenario::generate` would
    /// materialize every request as a 24-byte struct and dwarf the
    /// columnar store it exists to benchmark.
    pub fn large() -> Self {
        Self {
            world: WorldConfig::large(),
            population: PopulationConfig::large(),
            trace: TraceConfig::large(),
            num_ads: 12_000,
            pipeline: PipelineConfig {
                skipgram: SkipGramConfig {
                    dim: 64,
                    epochs: 1,
                    ..SkipGramConfig::default()
                },
                // Paper N = 1000 was calibrated against 470 K hosts; the
                // 10⁵ vocabulary is the closest tier we model, so keep it.
                // Exact scan over 10⁵ × 64 per query is what the IVF index
                // exists for — default to it at this tier.
                profiler: hostprof_core::ProfilerConfig {
                    n_neighbors: 1000,
                    index: hostprof_embed::IndexConfig::ivf(16),
                    ..Default::default()
                },
                ..PipelineConfig::default()
            },
            ..Self::default()
        }
    }

    /// A month-long run at the default scale (the E4/E5 experiments).
    pub fn paper_month() -> Self {
        Self {
            trace: TraceConfig::profiling_month(),
            pipeline: PipelineConfig {
                // N = 1000 was calibrated to the paper's 470 K-host space;
                // scale it to our ~9 K-host default world like the other
                // presets (DESIGN.md §4.1).
                profiler: hostprof_core::ProfilerConfig {
                    n_neighbors: 300,
                    ..Default::default()
                },
                ..PipelineConfig::default()
            },
            ..Self::default()
        }
    }
}

/// A generated scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The hostname universe.
    pub world: World,
    /// The user population.
    pub population: Population,
    /// The browsing trace.
    pub trace: Trace,
    /// The ad inventory.
    pub ads: AdDatabase,
}

impl Scenario {
    /// Generate everything. Deterministic per config.
    pub fn generate(config: &ScenarioConfig) -> Self {
        let world = World::generate(&config.world);
        let population = Population::generate(&world, &config.population);
        let trace = Trace::generate(&world, &population, &config.trace);
        let ads = AdDatabase::generate(&world, config.num_ads, config.ads_seed);
        Self {
            config: config.clone(),
            world,
            population,
            trace,
            ads,
        }
    }

    /// The profiling back-end configured for this scenario.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.config.pipeline.clone(), self.world.blocklist().clone())
    }

    /// One day's per-user hostname sequences (the SKIPGRAM training
    /// corpus), as owned strings.
    pub fn daily_hostname_sequences(&self, day: u32) -> Vec<Vec<String>> {
        self.trace
            .daily_sequences(day)
            .into_iter()
            .map(|(_, seq)| {
                seq.into_iter()
                    .map(|h| self.world.hostname(h).to_string())
                    .collect()
            })
            .collect()
    }

    /// The hostnames a user requested in the configured session window
    /// ending at their last request of `day` (empty when the user was
    /// idle).
    pub fn session_hostnames(&self, user: UserId, day: u32) -> Vec<String> {
        use hostprof_synth::trace::DAY_MS;
        let end_of_day = (day as u64 + 1) * DAY_MS;
        let last = self
            .trace
            .user_requests(user)
            .filter(|r| r.t_ms >= day as u64 * DAY_MS && r.t_ms < end_of_day)
            .last();
        let Some(last) = last else {
            return Vec::new();
        };
        self.trace
            .window(user, last.t_ms, self.config.pipeline.session_window_ms())
            .into_iter()
            .map(|h| self.world.hostname(h).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_is_complete_and_deterministic() {
        let a = Scenario::generate(&ScenarioConfig::tiny());
        let b = Scenario::generate(&ScenarioConfig::tiny());
        assert!(a.world.num_hosts() > 0);
        assert!(!a.population.is_empty());
        assert!(!a.trace.requests().is_empty());
        assert!(!a.ads.is_empty());
        assert_eq!(a.trace.requests(), b.trace.requests());
    }

    #[test]
    fn daily_sequences_and_sessions_are_consistent() {
        let s = Scenario::generate(&ScenarioConfig::tiny());
        let seqs = s.daily_hostname_sequences(0);
        assert!(!seqs.is_empty());
        // Find a user with day-1 activity and check their session window.
        let mut found = false;
        for u in s.population.users() {
            let sess = s.session_hostnames(u.id, 1);
            if !sess.is_empty() {
                found = true;
                assert!(sess.len() <= 400, "a 20-minute window is bounded");
                break;
            }
        }
        assert!(found, "someone browsed on day 1");
    }
}
