//! Tiled exact-kNN kernel over the prepared unit-norm matrix.
//!
//! [`crate::EmbeddingSet`] keeps a row-normalized copy of the embedding
//! matrix, so cosine similarity is a plain dot product. The scan walks the
//! vocabulary in cache-sized row tiles and scores every query against a
//! tile before moving on, keeping the tile hot in L1/L2 when several
//! session queries are batched. Candidates feed fixed-size top-k heaps.
//!
//! Ordering is fully deterministic: similarities compare via
//! `f32::total_cmp` and exact ties break toward the *lower* vocabulary
//! index, in the heap and in the final sort. The single-query and batched
//! entry points in `embedding.rs` both route through [`tiled_scan`], so a
//! batched result is bit-for-bit identical to the one-query-at-a-time
//! result by construction.
//!
//! The dot-product kernel lives in [`crate::simd`] (runtime AVX2+FMA
//! dispatch with a portable unrolled fallback), shared with the SKIPGRAM
//! training engine. The dispatch is process-wide and constant, so every
//! caller in a run sees one consistent summation order.

use crate::simd;

/// Tile footprint to aim for; 32 KiB of rows fits typical L1 caches.
const TILE_BYTES: usize = 32 * 1024;

/// Pack `(sim, idx)` into one order-preserving `u64` key: the high word is
/// the similarity's bits remapped so unsigned comparison matches
/// `f32::total_cmp`, the low word is `!idx` so equal similarities rank the
/// *lower* index higher. A larger key is a strictly better candidate, and
/// keys are unique (indices are), so selection is a total order with no
/// float comparisons in the hot loop.
#[inline]
pub(crate) fn pack(sim: f32, idx: u32) -> u64 {
    let bits = sim.to_bits();
    let ord = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000
    };
    ((ord as u64) << 32) | (!idx) as u64
}

/// Inverse of [`pack`].
#[inline]
fn unpack(key: u64) -> (u32, f32) {
    let idx = !(key as u32);
    let ord = (key >> 32) as u32;
    let bits = if ord & 0x8000_0000 != 0 {
        ord ^ 0x8000_0000
    } else {
        !ord
    };
    (idx, f32::from_bits(bits))
}

/// Index stored in a packed key (the low word of [`pack`], undone).
#[inline]
pub(crate) fn pack_index(key: u64) -> u32 {
    !(key as u32)
}

/// Reusable top-k accumulator over packed keys.
///
/// Two modes, chosen from `(k, rows)` at [`TopK::reset`] time (so any two
/// scans over the same matrix with the same `k` pick the same mode):
///
/// * **dense** — when `k` is a sizable fraction of the row count (the
///   paper's serving regime: `N = 1000` against a few-thousand-host
///   vocabulary), a bounded heap would churn on almost every row. Instead
///   all candidates are appended to a flat buffer and the top `k` are cut
///   out afterwards with `select_nth_unstable` + a sort of just the
///   winners.
/// * **heap** — when `k ≪ rows`, a classic bounded min-heap (root = worst
///   kept candidate) touches the heap only for the rare improving row.
///
/// Keys are totally ordered and unique, so both modes produce the same
/// output bit-for-bit.
pub(crate) struct TopK {
    keys: Vec<u64>,
    k: usize,
    dense: bool,
}

/// Hard ceiling on dense-mode rows. Dense mode buffers one key per scanned
/// row, so without a cap a "large `k` against a large matrix" reset (e.g.
/// `k = 200_000` over a million-row vocabulary) would pin ~8 MB *per
/// scratch heap, per worker*. Above the cap the bounded heap always wins on
/// memory and is competitive on time, so fall back to it.
const DENSE_ROWS_CAP: usize = 1 << 16;

impl TopK {
    pub(crate) fn new() -> Self {
        Self {
            keys: Vec::new(),
            k: 0,
            dense: false,
        }
    }

    pub(crate) fn reset(&mut self, k: usize, rows: usize) {
        self.keys.clear();
        self.k = k;
        self.dense = (k.saturating_mul(8) >= rows || rows <= 4096) && rows <= DENSE_ROWS_CAP;
        let need = if self.dense { rows } else { k };
        // Scratch is reused across scans of very different sizes; don't let
        // one huge scan pin its buffer forever.
        if self.keys.capacity() > need.saturating_mul(4).max(4096) {
            self.keys.shrink_to(need);
        }
        self.keys.reserve(need);
    }

    #[inline]
    pub(crate) fn consider(&mut self, idx: u32, sim: f32) {
        if self.k == 0 {
            return;
        }
        let key = pack(sim, idx);
        if self.dense {
            self.keys.push(key);
        } else if self.keys.len() < self.k {
            self.keys.push(key);
            self.sift_up(self.keys.len() - 1);
        } else if key > self.keys[0] {
            self.keys[0] = key;
            self.sift_down();
        }
    }

    /// Move the freshly pushed last element up to its min-heap position.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.keys[pos] >= self.keys[parent] {
                break;
            }
            self.keys.swap(pos, parent);
            pos = parent;
        }
    }

    /// Restore the min-heap after replacing the root.
    fn sift_down(&mut self) {
        let len = self.keys.len();
        let mut pos = 0;
        loop {
            let mut child = 2 * pos + 1;
            if child >= len {
                break;
            }
            if child + 1 < len && self.keys[child + 1] < self.keys[child] {
                child += 1;
            }
            if self.keys[pos] <= self.keys[child] {
                break;
            }
            self.keys.swap(pos, child);
            pos = child;
        }
    }

    /// Drain into `(index, similarity)` pairs, best first; ties by
    /// ascending index.
    pub(crate) fn take_sorted(&mut self) -> Vec<(u32, f32)> {
        if self.k == 0 {
            self.keys.clear();
            return Vec::new();
        }
        if self.dense && self.keys.len() > self.k {
            // Partition the k largest keys to the front, then order them.
            self.keys
                .select_nth_unstable_by(self.k - 1, |a, b| b.cmp(a));
            self.keys.truncate(self.k);
        }
        self.keys.sort_unstable_by(|a, b| b.cmp(a));
        let out = self.keys.iter().map(|&key| unpack(key)).collect();
        self.keys.clear();
        out
    }
}

/// Reusable per-caller scratch: the normalized-query buffer and the
/// per-query top-k heaps survive across calls, so steady-state scans
/// allocate only their result vectors.
pub struct KnnScratch {
    pub(crate) qhat: Vec<f32>,
    pub(crate) heaps: Vec<TopK>,
    /// Packed centroid-score keys for IVF probe selection.
    pub(crate) probe_keys: Vec<u64>,
}

impl KnnScratch {
    pub fn new() -> Self {
        Self {
            qhat: Vec::new(),
            heaps: Vec::new(),
            probe_keys: Vec::new(),
        }
    }
}

impl Default for KnnScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Scan `norms.len()` unit-norm rows against `q` normalized queries laid
/// out contiguously in `qhats` (`q * dim` floats), returning each query's
/// top `k` as `(index, cosine)` pairs, best first. Zero-norm rows are
/// skipped, matching the pre-normalization scan's behaviour.
pub(crate) fn tiled_scan(
    unit: &[f32],
    norms: &[f32],
    dim: usize,
    qhats: &[f32],
    k: usize,
    heaps: &mut Vec<TopK>,
) -> Vec<Vec<(u32, f32)>> {
    let q = qhats.len().checked_div(dim).unwrap_or(0);
    let rows = norms.len();
    while heaps.len() < q {
        heaps.push(TopK::new());
    }
    for heap in heaps.iter_mut().take(q) {
        heap.reset(k, rows);
    }
    let rows_per_tile = (TILE_BYTES / (dim.max(1) * std::mem::size_of::<f32>())).clamp(8, 512);
    let mut start = 0;
    while start < rows {
        let end = (start + rows_per_tile).min(rows);
        for (qi, heap) in heaps.iter_mut().enumerate().take(q) {
            let qhat = &qhats[qi * dim..(qi + 1) * dim];
            for row in start..end {
                if norms[row] <= f32::EPSILON {
                    continue;
                }
                let sim = simd::dot(qhat, &unit[row * dim..(row + 1) * dim]);
                heap.consider(row as u32, sim);
            }
        }
        start = end;
    }
    heaps.iter_mut().take(q).map(TopK::take_sorted).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_keys_roundtrip_and_order_like_total_cmp() {
        let sims = [
            -f32::NAN,
            f32::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            f32::EPSILON,
            0.5,
            1.0,
            f32::INFINITY,
            f32::NAN,
        ];
        for (i, &a) in sims.iter().enumerate() {
            let (idx, back) = unpack(pack(a, i as u32));
            assert_eq!(idx, i as u32);
            assert_eq!(back.to_bits(), a.to_bits(), "roundtrip of {a}");
            for &b in &sims {
                assert_eq!(pack(a, 3).cmp(&pack(b, 3)), a.total_cmp(&b), "{a} vs {b}");
            }
        }
        // Equal similarity: the lower index must win (rank higher).
        assert!(pack(0.5, 2) > pack(0.5, 7));
    }

    /// `rows` large enough to force heap mode, or small for dense mode.
    fn collect_topk(k: usize, rows: usize, items: &[(u32, f32)]) -> Vec<(u32, f32)> {
        let mut topk = TopK::new();
        topk.reset(k, rows);
        for &(idx, sim) in items {
            topk.consider(idx, sim);
        }
        topk.take_sorted()
    }

    #[test]
    fn top_k_breaks_ties_by_ascending_index_in_both_modes() {
        // Three exact ties and one winner, fed out of order.
        let items = [(7, 0.5), (2, 0.5), (9, 0.9), (4, 0.5)];
        for rows in [4, 1_000_000] {
            let out = collect_topk(3, rows, &items);
            assert_eq!(out.len(), 3, "rows={rows}");
            assert_eq!(out[0], (9, 0.9));
            // Ties keep the lowest indices, in ascending order.
            assert_eq!(out[1].0, 2);
            assert_eq!(out[2].0, 4);
        }
    }

    #[test]
    fn top_k_is_nan_safe_and_deterministic_in_both_modes() {
        let items = [(0, f32::NAN), (1, 0.1), (2, 0.3)];
        for rows in [3, 1_000_000] {
            let out = collect_topk(2, rows, &items);
            // total_cmp ranks positive NaN above every real, but never
            // panics and never depends on insertion order.
            assert_eq!(out.len(), 2, "rows={rows}");
            assert!(out[0].1.is_nan());
            assert_eq!(out[1], (2, 0.3));
        }
    }

    #[test]
    fn dense_and_heap_modes_agree_bit_for_bit() {
        // Pseudo-random similarities with duplicates; both mode choices
        // must produce identical output for identical input.
        let items: Vec<(u32, f32)> = (0u32..500)
            .map(|i| (i, (i.wrapping_mul(2654435761) % 97) as f32 / 97.0))
            .collect();
        for k in [0, 1, 7, 100, 499, 500, 600] {
            let dense = collect_topk(k, items.len(), &items);
            let heap = collect_topk(k, 1_000_000, &items);
            assert_eq!(dense.len(), heap.len(), "k={k}");
            for (d, h) in dense.iter().zip(&heap) {
                assert_eq!(d.0, h.0, "k={k}");
                assert_eq!(d.1.to_bits(), h.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn top_k_zero_k_returns_empty() {
        assert!(collect_topk(0, 10, &[(0, 1.0), (1, 0.5)]).is_empty());
    }

    #[test]
    fn dense_mode_is_capped_by_absolute_row_count() {
        let mut topk = TopK::new();
        // k·8 ≥ rows would pick dense, but the row count exceeds the cap:
        // the bounded heap must win so scratch stays ~k keys, not ~rows.
        topk.reset(200_000, 1_000_000);
        assert!(!topk.dense, "dense mode must not engage above the cap");
        assert!(topk.keys.capacity() < 1_000_000);
        // At or below the cap the dense fast path still engages.
        topk.reset(DENSE_ROWS_CAP / 8, DENSE_ROWS_CAP);
        assert!(topk.dense);
    }

    #[test]
    fn reset_shrinks_oversized_buffers() {
        let mut topk = TopK::new();
        topk.reset(8192, DENSE_ROWS_CAP); // dense: reserves the full cap
        assert!(topk.keys.capacity() >= DENSE_ROWS_CAP);
        topk.reset(10, 1_000_000); // heap mode: needs ~10 keys
        assert!(
            topk.keys.capacity() <= 4096,
            "oversized buffer kept: capacity {}",
            topk.keys.capacity()
        );
        // Shrinking never changes results.
        for &(idx, sim) in &[(5u32, 0.9f32), (1, 0.7), (9, 0.8)] {
            topk.consider(idx, sim);
        }
        assert_eq!(topk.take_sorted(), vec![(5, 0.9), (9, 0.8), (1, 0.7)]);
    }
}
