//! Offline in-tree subset of the `crossbeam` crate.
//!
//! Only the scoped-thread API the workspace uses is provided. Since Rust
//! 1.63, `std::thread::scope` offers the same borrow-the-stack guarantee
//! crossbeam pioneered, so this shim adapts the crossbeam call shape
//! (`scope(|s| { s.spawn(|_| …) }) -> Result<R>`) onto the std primitive.

pub mod thread {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// Scope handle passed to the `scope` closure; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// First child panic payload. std's implicit join discards child
        /// payloads (it panics with a generic message), so the shim
        /// captures them here to surface through `scope`'s `Err`.
        first_panic: Arc<Mutex<Option<Payload>>>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// workers can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            // `&std::thread::Scope` is Copy and valid for the whole
            // 'scope region, so a fresh wrapper can be rebuilt inside the
            // spawned thread rather than borrowing this stack frame.
            let inner = self.inner;
            let first_panic = Arc::clone(&self.first_panic);
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        f(&Scope {
                            inner,
                            first_panic: Arc::clone(&first_panic),
                        })
                    }));
                    match result {
                        Ok(v) => v,
                        Err(payload) => {
                            let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                            let repanic = if slot.is_none() {
                                *slot = Some(payload);
                                Box::new("scoped thread panicked; payload captured by scope")
                                    as Payload
                            } else {
                                payload
                            };
                            drop(slot);
                            resume_unwind(repanic)
                        }
                    }
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-stack threads can be
    /// spawned; every spawned thread is joined before `scope` returns.
    /// If any spawned thread panicked, returns `Err` carrying the *first*
    /// child's panic payload (crossbeam semantics); a panic in `f` itself
    /// propagates normally.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'s, 't> FnOnce(&'t Scope<'s, 'env>) -> R,
    {
        let first_panic: Arc<Mutex<Option<Payload>>> = Arc::new(Mutex::new(None));
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    first_panic: Arc::clone(&first_panic),
                })
            })
        }));
        match result {
            Ok(r) => Ok(r),
            Err(outer) => {
                let captured = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
                Err(captured.unwrap_or(outer))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        crate::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    sums.lock().unwrap().push(sum);
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn child_panic_payload_comes_back_through_err() {
        let result = crate::thread::scope(|s| {
            s.spawn(|_| panic!("child payload 42"));
        });
        let payload = result.expect_err("child panic must surface as Err");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("child payload 42"), "payload lost: {msg:?}");
    }
}
