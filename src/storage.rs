//! Model and artifact persistence.
//!
//! The paper's back-end retrains daily and "immediately starts using" the
//! new model (§5.4) — a real deployment persists each day's model so the
//! serving path can reload it. This module provides JSON save/load for the
//! pipeline's durable artifacts: trained [`EmbeddingSet`]s, the
//! [`Ontology`], and experiment results.

use hostprof_embed::EmbeddingSet;
use hostprof_ontology::Ontology;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum StorageError {
    /// Filesystem failure.
    Io(io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Serde(e) => write!(f, "storage serialization error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Serde(e) => Some(e),
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::Serde(e)
    }
}

/// Save any serializable artifact as pretty JSON. Parent directories are
/// created as needed.
pub fn save_json<T: Serialize>(path: &Path, value: &T) -> Result<(), StorageError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string(value)?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a JSON artifact saved by [`save_json`].
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, StorageError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Save one day's trained model (the §5.4 daily artifact).
pub fn save_model(path: &Path, model: &EmbeddingSet) -> Result<(), StorageError> {
    save_json(path, model)
}

/// Reload a day's model.
pub fn load_model(path: &Path) -> Result<EmbeddingSet, StorageError> {
    load_json(path)
}

/// Save the ontology snapshot (`H_L`).
pub fn save_ontology(path: &Path, ontology: &Ontology) -> Result<(), StorageError> {
    save_json(path, ontology)
}

/// Reload an ontology snapshot.
pub fn load_ontology(path: &Path) -> Result<Ontology, StorageError> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_core::{Pipeline, PipelineConfig};
    use hostprof_embed::SkipGramConfig;
    use hostprof_ontology::{Blocklist, CategoryId, CategoryVector};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hostprof-storage-{}-{name}", std::process::id()))
    }

    #[test]
    fn model_roundtrips_through_disk() {
        let corpus: Vec<Vec<String>> = (0..50)
            .map(|i| vec![format!("a{}.com", i % 5), format!("b{}.com", i % 7)])
            .collect();
        let pipeline = Pipeline::new(
            PipelineConfig {
                skipgram: SkipGramConfig::tiny(),
                ..Default::default()
            },
            Blocklist::new(),
        );
        let model = pipeline.train_model(&corpus).unwrap();
        let path = temp_path("model.json");
        save_model(&path, &model).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.len(), model.len());
        assert_eq!(
            back.cosine("a0.com", "b0.com"),
            model.cosine("a0.com", "b0.com")
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ontology_roundtrips_through_disk() {
        let mut o = Ontology::new();
        o.insert("espn.com", CategoryVector::singleton(CategoryId(13)));
        let path = temp_path("ontology.json");
        save_ontology(&path, &o).unwrap();
        let back = load_ontology(&path).unwrap();
        assert!(back.is_labeled("espn.com"));
        assert_eq!(back.len(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_model(Path::new("/nonexistent/deeply/model.json")).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn corrupt_file_is_a_serde_error() {
        let path = temp_path("corrupt.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, StorageError::Serde(_)));
        let _ = std::fs::remove_file(path);
    }
}
