//! Cross-session user profiles.
//!
//! The paper profiles *sessions* (the last `T` minutes) because its ad
//! experiment needs instantaneous interests. A network observer running
//! for months would accumulate those session profiles into a long-lived
//! per-user profile — §7.3's "profiles could be sold to third parties".
//! [`ProfileAccumulator`] does exactly that: an exponentially-weighted
//! moving average over session category vectors, so stable interests
//! consolidate while one-off sessions wash out.

use hostprof_ontology::CategoryVector;
use serde::{Deserialize, Serialize};

/// EWMA accumulator over session profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileAccumulator {
    /// Smoothing factor in `(0, 1]`: weight of the newest session.
    alpha: f32,
    profile: CategoryVector,
    sessions: u64,
}

impl ProfileAccumulator {
    /// Create with smoothing factor `alpha` (weight of each new session).
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            profile: CategoryVector::empty(),
            sessions: 0,
        }
    }

    /// Fold one session profile into the accumulated profile.
    pub fn observe(&mut self, session_categories: &CategoryVector) {
        self.sessions += 1;
        if self.sessions == 1 {
            self.profile = session_categories.clone();
            return;
        }
        // EWMA: profile = (1 - α)·profile + α·session.
        let mut next = CategoryVector::empty();
        next.add_scaled(&self.profile, 1.0 - self.alpha);
        next.add_scaled(session_categories, self.alpha);
        self.profile = next;
    }

    /// The accumulated profile (empty before any session).
    pub fn profile(&self) -> &CategoryVector {
        &self.profile
    }

    /// Number of sessions folded in.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_ontology::CategoryId;

    fn v(pairs: &[(u16, f32)]) -> CategoryVector {
        CategoryVector::from_pairs(pairs.iter().map(|&(c, w)| (CategoryId(c), w)).collect())
    }

    #[test]
    fn first_session_is_adopted_verbatim() {
        let mut acc = ProfileAccumulator::new(0.2);
        acc.observe(&v(&[(1, 0.8)]));
        assert_eq!(acc.profile().get(CategoryId(1)), 0.8);
        assert_eq!(acc.sessions(), 1);
    }

    #[test]
    fn stable_interests_consolidate_and_noise_washes_out() {
        let mut acc = ProfileAccumulator::new(0.25);
        // 19 sports sessions, 1 stray cooking session.
        for i in 0..20 {
            if i == 5 {
                acc.observe(&v(&[(99, 1.0)]));
            } else {
                acc.observe(&v(&[(7, 0.9)]));
            }
        }
        let sports = acc.profile().get(CategoryId(7));
        let stray = acc.profile().get(CategoryId(99));
        assert!(sports > 0.8, "stable interest consolidated: {sports}");
        assert!(stray < 0.05, "one-off session washed out: {stray}");
    }

    #[test]
    fn accumulation_beats_single_sessions_against_a_stable_truth() {
        let truth = v(&[(1, 1.0), (2, 0.6)]);
        // Sessions are noisy single-topic views of the truth.
        let sessions = [
            v(&[(1, 1.0)]),
            v(&[(2, 0.9)]),
            v(&[(1, 0.8)]),
            v(&[(2, 0.5)]),
        ];
        let mut acc = ProfileAccumulator::new(0.4);
        let mut best_single = 0f32;
        for s in &sessions {
            acc.observe(s);
            best_single = best_single.max(s.cosine(&truth));
        }
        assert!(
            acc.profile().cosine(&truth) > best_single,
            "blend {} beats best single {}",
            acc.profile().cosine(&truth),
            best_single
        );
    }

    #[test]
    fn alpha_one_tracks_the_latest_session() {
        let mut acc = ProfileAccumulator::new(1.0);
        acc.observe(&v(&[(1, 1.0)]));
        acc.observe(&v(&[(2, 1.0)]));
        assert_eq!(acc.profile().get(CategoryId(1)), 0.0);
        assert_eq!(acc.profile().get(CategoryId(2)), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = ProfileAccumulator::new(0.0);
    }
}
