//! The user click model.
//!
//! The paper cannot observe why a user clicks; it observes *that* they do,
//! and uses CTR as a proxy for profile quality. In the synthetic setting we
//! invert that: clicks are generated from ground truth, so CTR becomes a
//! measurable function of how well the served ad matches the user's real
//! interests:
//!
//! ```text
//! P(click) = base_ctr × (1 + affinity_gain × cos(interests, ad categories))
//! ```
//!
//! With the defaults (`base_ctr = 0.11 %`, `affinity_gain = 5`) a random ad
//! lands near the bottom of the 0.07–0.84 % industry CTR band the paper
//! cites, and a well-targeted ad roughly triples that — enough signal for
//! profile quality to move CTR, not so much that any profiler looks
//! magical.

use crate::ad::Ad;
use hostprof_synth::UserProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Click-probability parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClickModel {
    /// CTR of a completely untargeted impression.
    pub base_ctr: f64,
    /// Multiplicative gain per unit of interest–ad cosine affinity.
    pub affinity_gain: f64,
}

impl Default for ClickModel {
    fn default() -> Self {
        Self {
            base_ctr: 0.0011,
            affinity_gain: 5.0,
        }
    }
}

impl ClickModel {
    /// Click probability of `user` on `ad`.
    pub fn click_probability(&self, user: &UserProfile, ad: &Ad) -> f64 {
        let affinity = user.affinity(&ad.categories) as f64;
        (self.base_ctr * (1.0 + self.affinity_gain * affinity.max(0.0))).clamp(0.0, 1.0)
    }

    /// Sample whether the user clicks.
    pub fn clicks<R: Rng + ?Sized>(&self, rng: &mut R, user: &UserProfile, ad: &Ad) -> bool {
        rng.gen_bool(self.click_probability(user, ad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::{AdId, CreativeSize};
    use hostprof_ontology::{CategoryId, CategoryVector};
    use hostprof_synth::{HostId, UserId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn user_with_interest(cat: u16) -> UserProfile {
        UserProfile {
            id: UserId(0),
            interests: CategoryVector::singleton(CategoryId(cat)),
            topics: vec![(hostprof_ontology::TopCategoryId(0), 1.0)],
            sessions_per_day: 1.0,
        }
    }

    fn ad_with_category(cat: u16) -> Ad {
        Ad {
            id: AdId(0),
            size: CreativeSize {
                width: 300,
                height: 250,
            },
            landing_host: HostId(0),
            categories: CategoryVector::singleton(CategoryId(cat)),
            labeled: true,
            weight: 1.0,
        }
    }

    #[test]
    fn matched_ads_click_more() {
        let m = ClickModel::default();
        let u = user_with_interest(5);
        let matched = m.click_probability(&u, &ad_with_category(5));
        let mismatched = m.click_probability(&u, &ad_with_category(9));
        assert!((mismatched - m.base_ctr).abs() < 1e-12);
        assert!(
            (matched - m.base_ctr * 6.0).abs() < 1e-12,
            "gain 5 → 6× base"
        );
    }

    #[test]
    fn probabilities_are_valid_and_sampling_tracks_them() {
        let m = ClickModel {
            base_ctr: 0.1,
            affinity_gain: 5.0,
        };
        let u = user_with_interest(1);
        let ad = ad_with_category(1);
        let p = m.click_probability(&u, &ad);
        assert!((0.0..=1.0).contains(&p));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let clicks = (0..n).filter(|_| m.clicks(&mut rng, &u, &ad)).count();
        let freq = clicks as f64 / n as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
    }

    #[test]
    fn extreme_gain_is_clamped() {
        let m = ClickModel {
            base_ctr: 0.5,
            affinity_gain: 100.0,
        };
        let u = user_with_interest(1);
        let p = m.click_probability(&u, &ad_with_category(1));
        assert_eq!(p, 1.0);
    }

    #[test]
    fn default_lands_in_the_industry_band() {
        // Paper cites 0.07 %–0.84 % as reported campaign CTRs.
        let m = ClickModel::default();
        assert!(m.base_ctr >= 0.0007 && m.base_ctr <= 0.0084);
        // A plausibly-targeted ad (affinity ~0.35) stays inside the band
        // too.
        let implied = m.base_ctr * (1.0 + m.affinity_gain * 0.35);
        assert!(implied <= 0.0084, "implied {implied}");
    }
}
