//! Browsing-trace generation.
//!
//! A [`Trace`] is the ground-truth request stream: time-stamped
//! `(user, host)` pairs, millisecond resolution, spanning a configurable
//! number of days. Visiting a site fires its CDN/API/tracker dependencies
//! within ~1.5 s — the co-request structure the SKIPGRAM model learns from —
//! and interactive (streaming) sites open several connections per visit,
//! which the profiler must deduplicate (Section 4.1: "the algorithm only
//! takes into account the first visit").

use crate::config::TraceConfig;
use crate::ids::{HostId, UserId};
use crate::sampling::{log_normal, poisson, WeightedIndex};
use crate::user::Population;
use crate::world::World;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Milliseconds in a simulated day.
pub const DAY_MS: u64 = 86_400_000;

/// One observed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Milliseconds since experiment start.
    pub t_ms: u64,
    /// Requesting user.
    pub user: UserId,
    /// Requested host.
    pub host: HostId,
}

/// Hour-of-day activity weights (Spanish-flavored diurnal curve: quiet
/// nights, lunch peak, strong evenings).
pub(crate) const DIURNAL: [f64; 24] = [
    0.4, 0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 1.6, 2.0, 2.2, 2.4, 2.6, 2.2, 1.8, 1.9, 2.2, 2.6, 3.0,
    3.2, 3.0, 2.4, 1.6, 0.8,
];

/// The generated request stream, time-sorted, with a per-user index.
#[derive(Debug, Clone)]
pub struct Trace {
    requests: Vec<Request>,
    /// `user_index[u]` = indices into `requests`, ascending in time.
    user_index: Vec<Vec<u32>>,
    days: u32,
}

/// Emit one user's requests for every simulated day, in generation order
/// (NOT time order). This is the per-user unit `Trace::generate` runs for
/// each user in turn against one shared RNG; the columnar lane generator
/// (`crate::lane`) calls it with the same RNG discipline, which is what
/// keeps the two representations bit-identical — the RNG stream is
/// consumed strictly per-user, in user-id order, in both paths.
pub(crate) fn emit_user_requests<R: Rng>(
    world: &World,
    user: &crate::user::UserProfile,
    config: &TraceConfig,
    hour_sampler: &WeightedIndex,
    rng: &mut R,
    mut emit: impl FnMut(u64, HostId),
) {
    for day in 0..config.days {
        let n_sessions = poisson(rng, user.sessions_per_day);
        for _ in 0..n_sessions {
            let hour = hour_sampler.sample(rng) as u64;
            let mut t = day as u64 * DAY_MS + hour * 3_600_000 + rng.gen_range(0..3_600_000u64);
            let day_end = (day as u64 + 1) * DAY_MS;
            let pages =
                (1.0 + log_normal(rng, config.pages_mu, config.pages_sigma)).min(80.0) as usize;
            let mut topic = user.sample_topic(rng);
            for _ in 0..pages {
                if t >= day_end {
                    break;
                }
                if !rng.gen_bool(config.topic_persistence) {
                    topic = user.sample_topic(rng);
                }
                let host = if rng.gen_bool(config.core_visit_prob) {
                    world.sample_core(rng)
                } else {
                    world.sample_site(rng, topic)
                };
                emit(t, host);
                // Dependencies fire within ~1.5 s of the page load.
                for &dep in &world.host(host).deps {
                    if rng.gen_bool(config.dependency_fire_prob) {
                        emit(t + rng.gen_range(50..1500u64), dep);
                    }
                }
                // Dwell on the page; interactive hosts keep opening
                // connections while the user watches.
                let dwell_s = log_normal(rng, 30f64.ln(), 0.9).clamp(3.0, 300.0);
                if world.host(host).interactive {
                    let extra = rng.gen_range(2..=6u64);
                    for _ in 0..extra {
                        let dt = rng.gen_range(1_000..(dwell_s as u64 * 1000).max(2_000));
                        emit(t + dt, host);
                    }
                }
                t += (dwell_s * 1000.0) as u64;
            }
        }
    }
}

/// Headline counts for the E6/E7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total connections (the paper's 75 M during the profiling month).
    pub connections: usize,
    /// Distinct hostnames contacted (the paper's 470 K).
    pub unique_hosts: usize,
    /// Users with at least one request.
    pub active_users: usize,
    /// Simulated days.
    pub days: u32,
}

impl Trace {
    /// Generate a trace. Deterministic per (world, population, config).
    pub fn generate(world: &World, population: &Population, config: &TraceConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let hour_sampler = WeightedIndex::new(&DIURNAL).expect("diurnal weights positive");
        let mut requests: Vec<Request> = Vec::new();

        for user in population.users() {
            emit_user_requests(
                world,
                user,
                config,
                &hour_sampler,
                &mut rng,
                |t_ms, host| {
                    requests.push(Request {
                        t_ms,
                        user: user.id,
                        host,
                    });
                },
            );
        }

        requests.sort_by_key(|r| (r.t_ms, r.user, r.host));
        let mut user_index: Vec<Vec<u32>> = vec![Vec::new(); population.len()];
        for (i, r) in requests.iter().enumerate() {
            user_index[r.user.index()].push(i as u32);
        }
        Self {
            requests,
            user_index,
            days: config.days,
        }
    }

    /// All requests in time order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of simulated days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Number of users the trace was generated for (indexed population
    /// size, not the active-user count).
    pub fn num_users(&self) -> usize {
        self.user_index.len()
    }

    /// A user's requests in time order.
    pub fn user_requests(&self, user: UserId) -> impl Iterator<Item = &Request> {
        self.user_index[user.index()]
            .iter()
            .map(move |&i| &self.requests[i as usize])
    }

    /// Hosts a user requested within `(end_ms - duration_ms, end_ms]`, in
    /// time order, duplicates preserved. This is the raw input to the
    /// profiler's session window (`s_u^T`).
    pub fn window(&self, user: UserId, end_ms: u64, duration_ms: u64) -> Vec<HostId> {
        let idx = &self.user_index[user.index()];
        // Indices are time-ascending, so binary search the boundaries. The
        // window is half-open `(end - duration, end]`; when the duration
        // covers the whole timeline there is no exclusive lower bound, so
        // a request stamped exactly 0 is still included.
        let lo = match end_ms.checked_sub(duration_ms) {
            // A window reaching back to (or past) t = 0 has no exclusive
            // lower bound — include the request stamped exactly 0.
            None => 0,
            Some(0) if duration_ms > 0 => 0,
            Some(start) => idx.partition_point(|&i| self.requests[i as usize].t_ms <= start),
        };
        let hi = idx.partition_point(|&i| self.requests[i as usize].t_ms <= end_ms);
        idx[lo..hi]
            .iter()
            .map(|&i| self.requests[i as usize].host)
            .collect()
    }

    /// Per-user hostname sequences for one day — the SKIPGRAM training
    /// corpus (Section 5.4: "the sequence of hosts visited by all the users
    /// during the whole previous day"). Users with no activity that day are
    /// omitted.
    pub fn daily_sequences(&self, day: u32) -> Vec<(UserId, Vec<HostId>)> {
        let start = day as u64 * DAY_MS;
        let end = start + DAY_MS;
        let mut out = Vec::new();
        for (u, idx) in self.user_index.iter().enumerate() {
            let lo = idx.partition_point(|&i| self.requests[i as usize].t_ms < start);
            let hi = idx.partition_point(|&i| self.requests[i as usize].t_ms < end);
            if lo < hi {
                out.push((
                    UserId(u as u32),
                    idx[lo..hi]
                        .iter()
                        .map(|&i| self.requests[i as usize].host)
                        .collect(),
                ));
            }
        }
        out
    }

    /// The distinct hosts each user contacted over the whole trace
    /// (indexed by user; inactive users get empty sets). Backs Figure 2.
    pub fn user_host_sets(&self) -> Vec<HashSet<HostId>> {
        let mut sets: Vec<HashSet<HostId>> = vec![HashSet::new(); self.user_index.len()];
        for r in &self.requests {
            sets[r.user.index()].insert(r.host);
        }
        sets
    }

    /// Headline counts.
    pub fn stats(&self) -> TraceStats {
        let unique_hosts: HashSet<HostId> = self.requests.iter().map(|r| r.host).collect();
        let active: HashSet<UserId> = self.requests.iter().map(|r| r.user).collect();
        TraceStats {
            connections: self.requests.len(),
            unique_hosts: unique_hosts.len(),
            active_users: active.len(),
            days: self.days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PopulationConfig, WorldConfig};
    use crate::world::HostKind;

    fn setup() -> (World, Population, Trace) {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let trace = Trace::generate(&world, &pop, &TraceConfig::tiny());
        (world, pop, trace)
    }

    #[test]
    fn requests_are_time_sorted_and_within_horizon() {
        let (_, _, trace) = setup();
        assert!(!trace.requests().is_empty());
        for w in trace.requests().windows(2) {
            assert!(w[0].t_ms <= w[1].t_ms);
        }
        // Dependencies/interactive repeats may spill slightly past midnight;
        // allow the sub-session tail.
        let horizon = trace.days() as u64 * DAY_MS + 600_000;
        for r in trace.requests() {
            assert!(r.t_ms < horizon);
        }
    }

    #[test]
    fn dependencies_fire_near_page_visits() {
        let (world, _, trace) = setup();
        // Count infrastructure requests; they must exist and be a sizable
        // share — that's the co-request signal.
        let infra = trace
            .requests()
            .iter()
            .filter(|r| {
                matches!(
                    world.host(r.host).kind,
                    HostKind::Cdn | HostKind::Api | HostKind::Tracker
                )
            })
            .count();
        let frac = infra as f64 / trace.requests().len() as f64;
        assert!(frac > 0.3, "infrastructure share {frac}");
    }

    #[test]
    fn window_returns_exactly_the_requested_interval() {
        let (_, pop, trace) = setup();
        let user = pop.users()[0].id;
        let reqs: Vec<_> = trace.user_requests(user).cloned().collect();
        assert!(!reqs.is_empty(), "user 0 browsed something in 2 days");
        let end = reqs[reqs.len() / 2].t_ms;
        let dur = 20 * 60 * 1000u64;
        let win = trace.window(user, end, dur);
        let expected: Vec<HostId> = reqs
            .iter()
            .filter(|r| r.t_ms > end.saturating_sub(dur) && r.t_ms <= end)
            .map(|r| r.host)
            .collect();
        assert_eq!(win, expected);
    }

    #[test]
    fn window_reaching_time_zero_keeps_the_first_request() {
        // Hand-build a trace via generate determinism is overkill here;
        // use the generated trace's earliest request instead.
        let (_, _, trace) = setup();
        let first = trace.requests()[0];
        let win = trace.window(first.user, first.t_ms + 1000, u64::MAX);
        assert!(
            win.contains(&first.host),
            "a window spanning the whole timeline must include t = {}",
            first.t_ms
        );
    }

    #[test]
    fn daily_sequences_partition_user_activity() {
        let (_, _, trace) = setup();
        let total: usize = (0..trace.days())
            .map(|d| {
                trace
                    .daily_sequences(d)
                    .iter()
                    .map(|(_, s)| s.len())
                    .sum::<usize>()
            })
            .sum();
        // Requests stamped past the last midnight (dependency tails) may
        // fall outside every day bucket; there are at most a handful.
        assert!(total <= trace.requests().len());
        assert!(total as f64 > trace.requests().len() as f64 * 0.99);
    }

    #[test]
    fn sequences_are_topically_coherent() {
        let (world, _, trace) = setup();
        // Consecutive site visits should share a topic more often than
        // chance — the property SKIPGRAM exploits.
        let mut same = 0usize;
        let mut total = 0usize;
        for (_, seq) in trace.daily_sequences(0) {
            let sites: Vec<_> = seq
                .iter()
                .filter(|h| world.host(**h).kind == HostKind::Site)
                .collect();
            for w in sites.windows(2) {
                total += 1;
                if world.host(*w[0]).top_topic == world.host(*w[1]).top_topic {
                    same += 1;
                }
            }
        }
        assert!(total > 100, "enough site pairs to judge ({total})");
        let frac = same as f64 / total as f64;
        assert!(frac > 0.35, "topic persistence visible in trace: {frac}");
    }

    #[test]
    fn interactive_hosts_repeat_within_sessions() {
        let (world, _, trace) = setup();
        let mut repeats = 0usize;
        let mut last: Option<(UserId, HostId, u64)> = None;
        for r in trace.requests() {
            if world.host(r.host).interactive {
                if let Some((u, h, t)) = last {
                    if u == r.user && h == r.host && r.t_ms - t < 300_000 {
                        repeats += 1;
                    }
                }
                last = Some((r.user, r.host, r.t_ms));
            }
        }
        assert!(repeats > 0, "streaming sites open multiple connections");
    }

    #[test]
    fn stats_count_what_they_claim() {
        let (_, pop, trace) = setup();
        let s = trace.stats();
        assert_eq!(s.connections, trace.requests().len());
        assert!(s.active_users <= pop.len());
        assert!(s.active_users > 0);
        assert!(s.unique_hosts > 0);
        assert_eq!(s.days, 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let a = Trace::generate(&world, &pop, &TraceConfig::tiny());
        let b = Trace::generate(&world, &pop, &TraceConfig::tiny());
        assert_eq!(a.requests(), b.requests());
    }
}
