//! Compact identifiers for hosts and users.

use serde::{Deserialize, Serialize};

/// Index of a hostname in the synthetic world (`0 .. World::num_hosts()`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u32);

/// Index of a user in the synthetic population.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl HostId {
    /// Raw index for dense-array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UserId {
    /// Raw index for dense-array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_and_display() {
        assert_eq!(HostId(9).index(), 9);
        assert_eq!(UserId(2).index(), 2);
        assert_eq!(HostId(9).to_string(), "h9");
        assert_eq!(UserId(2).to_string(), "u2");
    }
}
