//! Two-proportion z-test.
//!
//! The paper compares CTRs with a paired t-test over per-user rates
//! (§6.4); a natural complementary check treats the two CTRs as pooled
//! binomial proportions (clicks out of impressions) and runs a
//! two-proportion z-test. The experiment binaries report both.

use serde::{Deserialize, Serialize};

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropTestResult {
    /// The z statistic.
    pub z: f64,
    /// Two-tailed p-value.
    pub p: f64,
    /// First sample's proportion.
    pub p1: f64,
    /// Second sample's proportion.
    pub p2: f64,
}

impl PropTestResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// The error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Two-tailed two-proportion z-test: `successes1/trials1` vs
/// `successes2/trials2`. Returns `None` for empty samples or a degenerate
/// pooled proportion (0 or 1 — the statistic is undefined; the samples are
/// identical in rate anyway).
///
/// # Panics
/// Panics when successes exceed trials.
pub fn two_proportion_z_test(
    successes1: u64,
    trials1: u64,
    successes2: u64,
    trials2: u64,
) -> Option<PropTestResult> {
    assert!(successes1 <= trials1, "successes1 > trials1");
    assert!(successes2 <= trials2, "successes2 > trials2");
    if trials1 == 0 || trials2 == 0 {
        return None;
    }
    let p1 = successes1 as f64 / trials1 as f64;
    let p2 = successes2 as f64 / trials2 as f64;
    let pooled = (successes1 + successes2) as f64 / (trials1 + trials2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / trials1 as f64 + 1.0 / trials2 as f64);
    if var <= 0.0 {
        return None;
    }
    let z = (p1 - p2) / var.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(PropTestResult {
        z,
        p: p.clamp(0.0, 1.0),
        p1,
        p2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        // erf(0)=0, erf(1)≈0.8427, erf(2)≈0.99532, odd function.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-5);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_is_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-6.0) < 1e-8);
    }

    #[test]
    fn clear_difference_is_significant() {
        // 5% vs 1% over 10k trials each.
        let r = two_proportion_z_test(500, 10_000, 100, 10_000).unwrap();
        assert!(r.significant(0.01), "p = {}", r.p);
        assert!(r.z > 10.0);
    }

    #[test]
    fn similar_proportions_are_not_significant() {
        // The paper's scale: ~0.217% vs 0.168% on 41K vs 229K impressions.
        let r = two_proportion_z_test(89, 41_000, 385, 229_000).unwrap();
        assert!((r.p1 - 0.00217).abs() < 1e-4);
        assert!(!r.significant(0.01), "p = {}", r.p);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(two_proportion_z_test(0, 0, 1, 10).is_none());
        assert!(two_proportion_z_test(0, 10, 0, 10).is_none(), "pooled 0");
        assert!(two_proportion_z_test(10, 10, 10, 10).is_none(), "pooled 1");
    }

    #[test]
    #[should_panic(expected = "successes1 > trials1")]
    fn impossible_counts_panic() {
        let _ = two_proportion_z_test(11, 10, 0, 10);
    }

    #[test]
    fn symmetry_flips_the_sign_only() {
        let a = two_proportion_z_test(50, 1000, 30, 1000).unwrap();
        let b = two_proportion_z_test(30, 1000, 50, 1000).unwrap();
        assert!((a.z + b.z).abs() < 1e-12);
        assert!((a.p - b.p).abs() < 1e-12);
    }
}
