//! Property tests for the synthetic-world generators and samplers.

use hostprof_synth::names::second_level_domain;
use hostprof_synth::sampling::{dirichlet, poisson, WeightedIndex, Zipf};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..2000, s in 0.1f64..2.5, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        // PMF sums to 1.
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing mass.
        for r in 1..n.min(50) {
            prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
        }
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..40),
        seed in any::<u64>(),
    ) {
        if let Some(w) = WeightedIndex::new(&weights) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..50 {
                let i = w.sample(&mut rng);
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0, "index {i} has zero weight");
            }
        } else {
            // Construction only fails when no weight is positive.
            prop_assert!(weights.iter().all(|&x| x <= 0.0));
        }
    }

    #[test]
    fn dirichlet_is_a_distribution(
        alphas in proptest::collection::vec(0.05f64..5.0, 1..10),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = dirichlet(&mut rng, &alphas);
        prop_assert_eq!(d.len(), alphas.len());
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn poisson_is_finite_and_nonnegative(lambda in 0.0f64..200.0, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = poisson(&mut rng, lambda);
        // Extremely loose upper bound that still catches runaway loops.
        prop_assert!(k < (lambda as u64 + 1) * 100 + 100);
    }

    #[test]
    fn second_level_domain_is_a_dot_suffix(host in "[a-z]{1,8}(\\.[a-z]{1,8}){0,4}") {
        let sld = second_level_domain(&host);
        prop_assert!(host.ends_with(sld));
        // Idempotent.
        prop_assert_eq!(second_level_domain(sld), sld);
        // Never more labels than the input.
        prop_assert!(sld.matches('.').count() <= host.matches('.').count());
    }
}
