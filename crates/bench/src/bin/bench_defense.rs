//! E9 — countermeasure degradation curves (DESIGN.md §15, replacing the
//! qualitative `countermeasures` table; paper §7.2 / §7.4).
//!
//! Every §15 defense axis — ECH adoption, dummy injection, constant and
//! adaptive padding, NAT pool mixing, DoH migration — runs through the
//! *full* pipeline at each sweep intensity: defended capture → skipgram
//! training on what survived → kNN Eq. 3/4 profiling of the final day →
//! the observed-view CTR experiment. The output is one degradation
//! curve per defense (recovery %, embedding purity, profile divergence
//! from the undefended baseline, eavesdropper-vs-ad-network CTR gap),
//! with the identity point of each sweep checked bit-equal to the
//! undefended pipeline — the same invariant the golden replays and
//! proptests pin.
//!
//! Writes a generation-stamped `results/bench_defense.json` (override
//! with `--out`). `--smoke` drops to the tiny scenario for CI; pair it
//! with `--max-rss-mb` to turn the memory claim into a hard gate.

use hostprof::defend::{default_sweep, DefenseCurve, DefenseEvaluator, DEFENSE_NAMES};
use hostprof::scenario::Scenario;
use hostprof_bench::{header, peak_rss_kb, row, write_results_stamped, write_stamped_at, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct DefenseBench {
    scale: String,
    smoke: bool,
    users: usize,
    days: u32,
    plan_seed: u64,
    with_ctr: bool,
    peak_rss_kb: u64,
    rss_gate_mb: Option<u64>,
    rss_gate_ok: bool,
    /// One degradation curve per defense, identity point first.
    curves: Vec<DefenseCurve>,
}

struct Args {
    scale: Scale,
    seed: u64,
    smoke: bool,
    no_ctr: bool,
    defense: Option<String>,
    max_rss_mb: Option<u64>,
    out: Option<String>,
}

const USAGE: &str = "usage: bench_defense [--scale tiny|small|default] [--seed N] \
[--defense NAME] [--no-ctr] [--smoke] [--max-rss-mb N] [--out PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::from_env(),
        seed: 0x00de_f5ed,
        smoke: false,
        no_ctr: false,
        defense: None,
        max_rss_mb: None,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = match value(&mut i, "--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" | "full" => Scale::Default,
                    other => return Err(format!("unknown scale {other:?}\n{USAGE}")),
                }
            }
            "--seed" => {
                args.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}\n{USAGE}"))?
            }
            "--defense" => args.defense = Some(value(&mut i, "--defense")?),
            "--no-ctr" => args.no_ctr = true,
            "--smoke" => args.smoke = true,
            "--max-rss-mb" => {
                args.max_rss_mb = Some(
                    value(&mut i, "--max-rss-mb")?
                        .parse()
                        .map_err(|e| format!("--max-rss-mb: {e}\n{USAGE}"))?,
                )
            }
            "--out" => args.out = Some(value(&mut i, "--out")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_defense: {e}");
            std::process::exit(2);
        }
    };
    let scale = if args.smoke { Scale::Tiny } else { args.scale };
    let mut cfg = scale.scenario();
    // The CTR stage re-runs the whole ad experiment per sweep point; a
    // 4-day trace (2 training + 2 ad days) keeps the full 6-axis sweep
    // in minutes while every curve metric stays populated.
    cfg.trace.days = cfg.trace.days.clamp(3, 4);
    let s = Scenario::generate(&cfg);

    let names: Vec<&str> = match &args.defense {
        None => DEFENSE_NAMES.to_vec(),
        Some(name) => match DEFENSE_NAMES.iter().find(|n| *n == name) {
            Some(n) => vec![*n],
            None => {
                eprintln!(
                    "bench_defense: unknown defense {name:?} (one of: {})",
                    DEFENSE_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
    };

    header(&format!(
        "Defense degradation curves (scale: {}, {} users, {} days)",
        scale.label(),
        s.population.len(),
        s.trace.days()
    ));

    let mut ev = DefenseEvaluator::new(&s, args.seed);
    ev.with_ctr = !args.no_ctr;

    let mut curves: Vec<DefenseCurve> = Vec::new();
    let mut identity_ok = true;
    for name in &names {
        let sweep = default_sweep(name).expect("known defense");
        let curve = ev.eval_curve(name, &sweep).expect("known defense");
        println!("\n  defense {name}:");
        println!(
            "    {:>10} {:>10} {:>8} {:>10} {:>9} {:>9}",
            "intensity", "recovery%", "purity", "divergence", "accuracy", "ctr_gap"
        );
        for p in &curve.points {
            println!(
                "    {:>10.2} {:>10.2} {:>8.3} {:>10.3} {:>9.3} {:>+9.4}{}",
                p.intensity,
                p.recovery_pct,
                p.purity,
                p.divergence,
                p.mean_accuracy,
                p.ctr_gap * 100.0,
                match p.identity_bit_equal {
                    Some(true) => "  [identity: bit-equal]",
                    Some(false) => "  [identity: DIVERGED]",
                    None => "",
                }
            );
            if p.identity_bit_equal == Some(false) {
                identity_ok = false;
            }
        }
        curves.push(curve);
    }

    let rss_kb = peak_rss_kb();
    let rss_gate_ok = args.max_rss_mb.is_none_or(|mb| rss_kb <= mb * 1024);
    row("peak RSS", format!("{rss_kb} kB"));
    if let Some(mb) = args.max_rss_mb {
        row(
            "RSS gate",
            format!("{mb} MB: {}", if rss_gate_ok { "ok" } else { "BREACHED" }),
        );
    }

    let ech_floor = curves
        .iter()
        .find(|c| c.defense == "ech")
        .and_then(|c| c.points.last())
        .map_or(0.0, |p| p.recovery_pct);
    let results = DefenseBench {
        scale: scale.label().to_string(),
        smoke: args.smoke,
        users: s.population.len(),
        days: s.trace.days(),
        plan_seed: args.seed,
        with_ctr: !args.no_ctr,
        peak_rss_kb: rss_kb,
        rss_gate_mb: args.max_rss_mb,
        rss_gate_ok,
        curves,
    };
    let headline = format!(
        "{} defenses x {} points, identity bit-equal: {}, ech@100 recovery {ech_floor:.2}%",
        results.curves.len(),
        results.curves.first().map_or(0, |c| c.points.len()),
        identity_ok,
    );
    match &args.out {
        Some(path) => {
            let path = std::path::Path::new(path);
            match write_stamped_at(path, &results, &headline) {
                Ok(()) => println!("\n[results written to {}]", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        None => write_results_stamped("bench_defense", &results, &headline),
    }

    if !identity_ok {
        eprintln!("bench_defense: an identity point diverged from the undefended baseline");
        std::process::exit(1);
    }
    if !rss_gate_ok {
        eprintln!("bench_defense: peak RSS breached the --max-rss-mb gate");
        std::process::exit(1);
    }
}
