//! Session-profiling latency: the per-report cost of the back-end
//! (aggregate → N-NN → Eq. 3/4), which bounds how many users one profiling
//! node can serve at the paper's 10-minute report cadence.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof_core::{ProfilerConfig, Session};

fn bench_profiling(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::tiny();
    cfg.trace.days = 4;
    let s = Scenario::generate(&cfg);
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..3 {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let embeddings = pipeline.train_model(&corpus).expect("corpus");

    // A real session from the trace.
    let window = s
        .population
        .users()
        .iter()
        .map(|u| s.session_hostnames(u.id, 3))
        .find(|w| w.len() >= 10)
        .expect("an active user exists");
    let session = Session::from_window(
        window.iter().map(String::as_str),
        Some(pipeline.blocklist()),
    );

    let mut g = c.benchmark_group("profile_session");
    for n in [50usize, 200, 1000] {
        let profiler = hostprof_core::Profiler::new(
            &embeddings,
            s.world.ontology(),
            ProfilerConfig { n_neighbors: n, ..Default::default() },
        );
        g.bench_with_input(BenchmarkId::new("n_neighbors", n), &n, |b, _| {
            b.iter(|| profiler.profile(black_box(&session)).is_some())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("session_extraction");
    g.bench_function("from_window_with_blocklist", |b| {
        b.iter(|| {
            Session::from_window(
                black_box(window.iter().map(String::as_str)),
                Some(pipeline.blocklist()),
            )
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
