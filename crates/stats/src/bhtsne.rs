//! Barnes–Hut t-SNE (van der Maaten, 2014).
//!
//! The exact reducer in [`crate::tsne`] is O(n² · iterations) — fine for
//! the ≤1 K-point Figure 4 samples, prohibitive for the full second-level
//! domain set. This implementation brings the per-iteration cost down to
//! O(n log n):
//!
//! * **input affinities** are sparsified to each point's `3 × perplexity`
//!   nearest neighbors (as in the original BH-SNE paper), found by exact
//!   scan (O(n²) once, cheap relative to hundreds of gradient iterations);
//! * **repulsive forces** are approximated with a quadtree
//!   ([`crate::quadtree::QuadTree`]): any cell whose extent-over-distance
//!   ratio is below `theta` is treated as a single body at its center of
//!   mass;
//! * **attractive forces** only touch the sparse affinity entries.
//!
//! Optimizer details (early exaggeration, momentum switch, adaptive gains)
//! match the exact implementation so results are comparable.

use crate::quadtree::QuadTree;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Barnes–Hut t-SNE hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BhTsneConfig {
    /// Target perplexity of the input affinities.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor for the first quarter of the run.
    pub early_exaggeration: f64,
    /// Barnes–Hut accuracy knob: 0 = exact, larger = faster/coarser.
    pub theta: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for BhTsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 500,
            learning_rate: 200.0,
            early_exaggeration: 12.0,
            theta: 0.5,
            seed: 0x7e5e_0002,
        }
    }
}

/// Sparse symmetric affinities: per-point neighbor lists.
struct SparseAffinities {
    /// `neighbors[i]` = (j, p_ij) entries, including the symmetrized mass.
    neighbors: Vec<Vec<(u32, f64)>>,
}

/// The Barnes–Hut reducer.
#[derive(Debug, Clone)]
pub struct BhTsne {
    config: BhTsneConfig,
}

impl BhTsne {
    /// Create with a config.
    pub fn new(config: BhTsneConfig) -> Self {
        Self { config }
    }

    /// Embed `n = points.len() / dim` row-major points into 2-D.
    ///
    /// # Panics
    /// Panics when `points.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn embed(&self, points: &[f32], dim: usize) -> Vec<(f64, f64)> {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(points.len() % dim, 0, "points must be n × dim");
        let n = points.len() / dim;
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(0.0, 0.0)];
        }
        let p = self.sparse_affinities(points, dim, n);
        self.gradient_descent(&p, n)
    }

    /// Sparse symmetrized affinities over each point's k nearest neighbors.
    fn sparse_affinities(&self, points: &[f32], dim: usize, n: usize) -> SparseAffinities {
        // `clamp(3, n-1)` would panic for n < 5 (min > max); bound by the
        // population first.
        let k = ((3.0 * self.config.perplexity) as usize)
            .max(3)
            .min(n - 1)
            .max(1);
        let target_entropy = self.config.perplexity.max(1.0).ln();

        // kNN by exact scan (one-off O(n²) — acceptable versus iterations).
        let mut cond: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        let mut d2 = vec![0f64; n];
        for i in 0..n {
            for (j, slot) in d2.iter_mut().enumerate() {
                if i == j {
                    *slot = f64::INFINITY;
                    continue;
                }
                let mut s = 0f64;
                for t in 0..dim {
                    let diff = (points[i * dim + t] - points[j * dim + t]) as f64;
                    s += diff * diff;
                }
                *slot = s;
            }
            // k smallest distances.
            let mut idx: Vec<u32> = (0..n as u32).filter(|&j| j as usize != i).collect();
            idx.select_nth_unstable_by(k - 1, |&a, &b| {
                d2[a as usize]
                    .partial_cmp(&d2[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let knn = &idx[..k];

            // Bandwidth search over the kNN set only.
            let mut beta = 1.0f64;
            let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
            for _ in 0..50 {
                let mut sum = 0f64;
                let mut dsum = 0f64;
                for &j in knn {
                    let pj = (-d2[j as usize] * beta).exp();
                    sum += pj;
                    dsum += pj * d2[j as usize];
                }
                if sum <= 0.0 {
                    break;
                }
                let entropy = beta * dsum / sum + sum.ln();
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-5 {
                    break;
                }
                if diff > 0.0 {
                    lo = beta;
                    beta = if hi.is_finite() {
                        (beta + hi) / 2.0
                    } else {
                        beta * 2.0
                    };
                } else {
                    hi = beta;
                    beta = if lo.is_finite() {
                        (beta + lo) / 2.0
                    } else {
                        beta / 2.0
                    };
                }
            }
            let mut sum = 0f64;
            let mut row: Vec<(u32, f64)> = knn
                .iter()
                .map(|&j| {
                    let pj = (-d2[j as usize] * beta).exp();
                    sum += pj;
                    (j, pj)
                })
                .collect();
            if sum > 0.0 {
                for (_, p) in &mut row {
                    *p /= sum;
                }
            }
            cond.push(row);
        }

        // Symmetrize: p_ij = (p_j|i + p_i|j) / 2n, stored on both rows.
        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        use std::collections::HashMap;
        let mut cond_maps: Vec<HashMap<u32, f64>> = Vec::with_capacity(n);
        for row in &cond {
            cond_maps.push(row.iter().copied().collect());
        }
        for i in 0..n {
            for &(j, pij) in &cond[i] {
                if (j as usize) < i && cond_maps[j as usize].contains_key(&(i as u32)) {
                    continue; // handled from j's side
                }
                let pji = cond_maps[j as usize]
                    .get(&(i as u32))
                    .copied()
                    .unwrap_or(0.0);
                let p = ((pij + pji) / (2.0 * n as f64)).max(1e-12);
                neighbors[i].push((j, p));
                neighbors[j as usize].push((i as u32, p));
            }
        }
        SparseAffinities { neighbors }
    }

    fn gradient_descent(&self, p: &SparseAffinities, n: usize) -> Vec<(f64, f64)> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut y: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let g = |rng: &mut ChaCha8Rng| {
                    let u1: f64 = 1.0 - rng.gen::<f64>();
                    let u2: f64 = rng.gen();
                    1e-4 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                (g(&mut rng), g(&mut rng))
            })
            .collect();
        let mut velocity = vec![(0f64, 0f64); n];
        let mut gains = vec![(1f64, 1f64); n];
        let exag_until = self.config.iterations / 4;

        for iter in 0..self.config.iterations {
            let exag = if iter < exag_until {
                self.config.early_exaggeration
            } else {
                1.0
            };
            let momentum = if iter < self.config.iterations / 2 {
                0.5
            } else {
                0.8
            };

            let tree = QuadTree::build(&y);

            // Repulsive forces + Z via Barnes–Hut.
            let mut rep = vec![(0f64, 0f64); n];
            let mut z = 0f64;
            for i in 0..n {
                let (xi, yi) = y[i];
                tree.for_each_body(xi, yi, self.config.theta, &mut |count, cx, cy| {
                    let dx = xi - cx;
                    let dy = yi - cy;
                    let q = 1.0 / (1.0 + dx * dx + dy * dy);
                    z += count as f64 * q;
                    rep[i].0 += count as f64 * q * q * dx;
                    rep[i].1 += count as f64 * q * q * dy;
                });
                // Remove the self-interaction (q = 1 at distance 0).
                z -= 1.0;
            }
            let z = z.max(1e-12);

            // Attractive forces over the sparse affinities.
            let mut attr = vec![(0f64, 0f64); n];
            for i in 0..n {
                let (xi, yi) = y[i];
                for &(j, pij) in &p.neighbors[i] {
                    let (xj, yj) = y[j as usize];
                    let dx = xi - xj;
                    let dy = yi - yj;
                    let q = 1.0 / (1.0 + dx * dx + dy * dy);
                    attr[i].0 += exag * pij * q * dx;
                    attr[i].1 += exag * pij * q * dy;
                }
            }

            // Combine, update with momentum + adaptive gains, re-center.
            let (mut cx, mut cy) = (0f64, 0f64);
            for i in 0..n {
                let grad = (
                    4.0 * (attr[i].0 - rep[i].0 / z),
                    4.0 * (attr[i].1 - rep[i].1 / z),
                );
                let update = |g: f64, v: &mut f64, gain: &mut f64| {
                    *gain = if g.signum() == v.signum() {
                        (*gain * 0.8).max(0.01)
                    } else {
                        *gain + 0.2
                    };
                    *v = momentum * *v - self.config.learning_rate * *gain * g;
                };
                update(grad.0, &mut velocity[i].0, &mut gains[i].0);
                update(grad.1, &mut velocity[i].1, &mut gains[i].1);
                y[i].0 += velocity[i].0;
                y[i].1 += velocity[i].1;
                cx += y[i].0;
                cy += y[i].1;
            }
            cx /= n as f64;
            cy /= n as f64;
            for pt in &mut y {
                pt.0 -= cx;
                pt.1 -= cy;
            }
        }
        y
    }
}

impl Default for BhTsne {
    fn default() -> Self {
        Self::new(BhTsneConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, dim: usize, separation: f32) -> (Vec<f32>, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut pts = Vec::with_capacity(2 * n_per * dim);
        for blob in 0..2 {
            for _ in 0..n_per {
                for _ in 0..dim {
                    let center = blob as f32 * separation;
                    pts.push(center + rng.gen::<f32>() - 0.5);
                }
            }
        }
        (pts, dim)
    }

    fn blob_separation(y: &[(f64, f64)], n_per: usize) -> (f64, f64) {
        let centroid = |r: std::ops::Range<usize>| {
            let n = r.len() as f64;
            let (mut cx, mut cy) = (0.0, 0.0);
            for i in r {
                cx += y[i].0;
                cy += y[i].1;
            }
            (cx / n, cy / n)
        };
        let (ax, ay) = centroid(0..n_per);
        let (bx, by) = centroid(n_per..2 * n_per);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let spread = (0..n_per)
            .map(|i| ((y[i].0 - ax).powi(2) + (y[i].1 - ay).powi(2)).sqrt())
            .sum::<f64>()
            / n_per as f64;
        (between, spread)
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (pts, dim) = blobs(40, 8, 8.0);
        let y = BhTsne::new(BhTsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..Default::default()
        })
        .embed(&pts, dim);
        assert_eq!(y.len(), 80);
        let (between, spread) = blob_separation(&y, 40);
        assert!(
            between > spread * 2.0,
            "between {between} vs spread {spread}"
        );
        for (a, b) in &y {
            assert!(a.is_finite() && b.is_finite());
        }
    }

    #[test]
    fn theta_zero_matches_spirit_of_exact() {
        // With theta = 0 the BH gradient is exact (modulo the sparse P);
        // the layout should separate blobs at least as well as coarse BH.
        let (pts, dim) = blobs(30, 6, 12.0);
        let run = |theta: f64| {
            BhTsne::new(BhTsneConfig {
                perplexity: 8.0,
                iterations: 300,
                theta,
                ..Default::default()
            })
            .embed(&pts, dim)
        };
        let exactish = run(0.0);
        let coarse = run(0.8);
        let (b_exact, s_exact) = blob_separation(&exactish, 30);
        let (b_coarse, s_coarse) = blob_separation(&coarse, 30);
        assert!(b_exact > s_exact * 1.2, "{b_exact} vs {s_exact}");
        assert!(
            b_coarse > s_coarse * 1.2,
            "even coarse theta separates: {b_coarse} vs {s_coarse}"
        );
    }

    #[test]
    fn trivial_inputs() {
        let t = BhTsne::default();
        assert!(t.embed(&[], 4).is_empty());
        assert_eq!(t.embed(&[1.0, 2.0], 2), vec![(0.0, 0.0)]);
        // 2–4 points used to panic in the kNN clamp.
        for n in 2..=4usize {
            let pts: Vec<f32> = (0..n * 2).map(|i| i as f32).collect();
            let cfg = BhTsneConfig {
                iterations: 10,
                ..Default::default()
            };
            assert_eq!(BhTsne::new(cfg).embed(&pts, 2).len(), n);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, dim) = blobs(15, 4, 6.0);
        let cfg = BhTsneConfig {
            perplexity: 6.0,
            iterations: 60,
            ..Default::default()
        };
        assert_eq!(
            BhTsne::new(cfg.clone()).embed(&pts, dim),
            BhTsne::new(cfg).embed(&pts, dim)
        );
    }

    #[test]
    #[should_panic(expected = "n × dim")]
    fn shape_mismatch_panics() {
        let _ = BhTsne::default().embed(&[1.0, 2.0, 3.0], 2);
    }
}
