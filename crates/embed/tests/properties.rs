//! Property tests for the embedding engine's data structures.

use hostprof_embed::{EmbeddingSet, KernelChoice, NegativeTable, SkipGram, SkipGramConfig, Vocab};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec("[a-f]{1,3}", 1..12)
            .prop_map(|toks| toks.into_iter().map(|t| format!("{t}.com")).collect()),
        1..20,
    )
}

proptest! {
    #[test]
    fn vocab_counts_are_conserved(corpus in corpus_strategy()) {
        let vocab = Vocab::build(
            corpus.iter().map(|s| s.iter().map(String::as_str)),
            1,
            0.0,
        );
        // Total count equals corpus token count when min_count = 1.
        let tokens: u64 = corpus.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(vocab.total_count(), tokens);
        // Every token resolves, and counts are ordered descending.
        for seq in &corpus {
            for t in seq {
                prop_assert!(vocab.get(t).is_some());
            }
        }
        for i in 1..vocab.len() as u32 {
            prop_assert!(vocab.count(i - 1) >= vocab.count(i));
        }
    }

    #[test]
    fn min_count_never_increases_vocab(corpus in corpus_strategy(), min_count in 1u64..5) {
        let all = Vocab::build(corpus.iter().map(|s| s.iter().map(String::as_str)), 1, 0.0);
        let filtered =
            Vocab::build(corpus.iter().map(|s| s.iter().map(String::as_str)), min_count, 0.0);
        prop_assert!(filtered.len() <= all.len());
        // Survivors keep their exact counts.
        for (idx, tok) in filtered.iter() {
            let all_idx = all.get(tok).expect("token survives in unfiltered vocab");
            prop_assert_eq!(filtered.count(idx), all.count(all_idx));
            prop_assert!(filtered.count(idx) >= min_count);
        }
    }

    #[test]
    fn negative_table_samples_stay_in_range(corpus in corpus_strategy(), draws in 0u64..500) {
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter().map(String::as_str)), 1, 0.0);
        let table = NegativeTable::with_size(&vocab, 4096);
        for i in 0..draws {
            let idx = table.sample(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            prop_assert!((idx as usize) < vocab.len());
        }
    }

    #[test]
    fn keep_probabilities_are_valid(corpus in corpus_strategy(), sample in 0.0f64..0.1) {
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter().map(String::as_str)), 1, sample);
        for (idx, _) in vocab.iter() {
            let p = vocab.keep_prob(idx);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn trained_vectors_are_finite_for_any_corpus(corpus in corpus_strategy()) {
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 2,
            subsample: 0.0,
            ..SkipGramConfig::default()
        };
        // Training may legitimately fail (too-small corpora); when it
        // succeeds, every vector must be finite.
        if let Ok(model) = SkipGram::train(&corpus, &cfg) {
            for i in 0..model.vocab().len() as u32 {
                for v in model.vector(i) {
                    prop_assert!(v.is_finite());
                }
            }
        }
    }

    /// The scalar reference loop and the fused SIMD kernels must land on
    /// the same weights. Both paths consume identical RNG streams (window
    /// draws, subsampling and negative sampling never depend on the
    /// kernel), so the only divergence is float summation order — bounded
    /// here to 1e-4 per weight, across *both* matrices. `dim = 17`
    /// deliberately exercises the 8-lane SIMD body plus a ragged tail.
    #[test]
    fn scalar_and_simd_kernels_agree_per_weight(
        corpus in proptest::collection::vec(
            proptest::collection::vec("[a-f]{1,3}", 2..16)
                .prop_map(|toks| toks.into_iter().map(|t| format!("{t}.com")).collect::<Vec<_>>()),
            1..8,
        ),
        seed in 1u64..1_000_000,
    ) {
        let cfg = |kernel| SkipGramConfig {
            dim: 17,
            epochs: 1,
            subsample: 0.0,
            threads: 1,
            seed,
            kernel,
            ..SkipGramConfig::default()
        };
        let scalar = SkipGram::train(&corpus, &cfg(KernelChoice::Scalar));
        let simd = SkipGram::train(&corpus, &cfg(KernelChoice::Simd));
        match (scalar, simd) {
            (Ok(s), Ok(v)) => {
                prop_assert_eq!(s.vocab().len(), v.vocab().len());
                for i in 0..s.vocab().len() as u32 {
                    for (a, b) in s.vector(i).iter().zip(v.vector(i)) {
                        prop_assert!((a - b).abs() < 1e-4, "input[{}]: {} vs {}", i, a, b);
                    }
                    for (a, b) in s.context_vector(i).iter().zip(v.context_vector(i)) {
                        prop_assert!((a - b).abs() < 1e-4, "context[{}]: {} vs {}", i, a, b);
                    }
                }
            }
            // Degenerate corpora fail identically regardless of kernel.
            (Err(_), Err(_)) => {}
            (s, v) => prop_assert!(false, "kernels disagree on trainability: {:?} vs {:?}",
                                   s.is_ok(), v.is_ok()),
        }
    }

    #[test]
    fn mean_vector_is_within_the_convex_hull_bounds(corpus in corpus_strategy()) {
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 1,
            subsample: 0.0,
            ..SkipGramConfig::default()
        };
        let Ok(model) = SkipGram::train(&corpus, &cfg) else { return Ok(()); };
        let emb: EmbeddingSet = model.into_embeddings();
        let tokens: Vec<String> = emb.vocab().iter().map(|(_, t)| t.to_string()).collect();
        let Some(mean) = emb.mean_vector(tokens.iter().map(String::as_str)) else {
            return Ok(());
        };
        // Each coordinate of the mean lies within [min, max] of that
        // coordinate across all vectors.
        for (d, &m) in mean.iter().enumerate() {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for i in 0..emb.len() as u32 {
                let v = emb.vector_by_index(i)[d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            prop_assert!(m >= lo - 1e-5 && m <= hi + 1e-5);
        }
    }
}
