//! Columnar-store ↔ legacy-trace equivalence (DESIGN.md §13).
//!
//! The structure-of-arrays store (`hostprof-store`) and the streaming
//! lane generator (`hostprof_synth::generate_columnar`) exist so a
//! million-user world never has to materialize as a `Vec<Request>`. That
//! is only sound if, on the same seeds, the columnar path is
//! **bit-identical** to the legacy path every consumer was validated
//! against:
//!
//! * the per-event stream `(t_ms, user, host)` digests equal (the replay
//!   suite's stage-1 framing),
//! * the per-(user, day) session windows and training sequences come out
//!   byte-identical through `SessionSource`,
//! * the flat container round-trips the whole store bit-for-bit.
//!
//! The scenario shapes reuse `replay_scenario_config`, so the seeds here
//! are the exact worlds the committed golden snapshots pin.

use hostprof::replay::{replay_scenario_config, ReplayOptions};
use hostprof::scenario::ScenarioConfig;
use hostprof_core::{Session, SessionSource};
use hostprof_store::{TraceAccess, TraceColumns};
use hostprof_synth::trace::DAY_MS;
use hostprof_synth::{generate_columnar, Population, Trace, UserId, World};
use proptest::prelude::*;

const SEEDS: [u64; 3] = [1, 2, 3];

/// FNV-1a-64 with the same length-prefixed framing `src/replay.rs` uses
/// for its stage digests.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// The replay suite's stage-1 digest, computed from the legacy trace.
fn trace_digest_legacy(trace: &Trace) -> String {
    let mut d = Digest::new();
    for r in trace.requests() {
        d.write_u64(r.t_ms);
        d.write_u64(r.user.0 as u64);
        d.write_u64(r.host.0 as u64);
    }
    d.hex()
}

/// The same digest computed from the columnar store. Host ids are interned
/// in `HostId` order by `generate_columnar`, so the id streams must match
/// verbatim, not just the resolved names. The store is user-major; the
/// legacy request list is globally `(t, user, host)`-sorted, so restore
/// that order before hashing.
fn trace_digest_columnar(columns: &TraceColumns) -> String {
    let mut events: Vec<(u64, u32, u32)> = Vec::with_capacity(columns.num_events());
    for user in 0..columns.num_users() as u32 {
        let times = columns.user_times(user);
        let hosts = columns.user_hosts(user);
        for (t, h) in times.iter().zip(hosts) {
            events.push((*t as u64, user, *h));
        }
    }
    events.sort_unstable();
    let mut d = Digest::new();
    for (t, u, h) in events {
        d.write_u64(t);
        d.write_u64(u as u64);
        d.write_u64(h as u64);
    }
    d.hex()
}

fn generate_both(cfg: &ScenarioConfig) -> (World, Population, Trace, TraceColumns) {
    let world = World::generate(&cfg.world);
    let population = Population::generate(&world, &cfg.population);
    let trace = Trace::generate(&world, &population, &cfg.trace);
    let columns = generate_columnar(&world, &population, &cfg.trace);
    (world, population, trace, columns)
}

#[test]
fn golden_seeds_share_one_trace_digest_across_both_paths() {
    for seed in SEEDS {
        let cfg = replay_scenario_config(&ReplayOptions::for_seed(seed));
        let (_, _, trace, columns) = generate_both(&cfg);
        assert_eq!(
            trace_digest_legacy(&trace),
            trace_digest_columnar(&columns),
            "seed {seed}: columnar stream diverged from the legacy trace"
        );
    }
}

#[test]
fn flat_container_roundtrip_is_bit_identical_on_golden_seeds() {
    for seed in SEEDS {
        let cfg = replay_scenario_config(&ReplayOptions::for_seed(seed));
        let (_, _, _, columns) = generate_both(&cfg);
        let bytes = columns.to_flat_bytes();
        let back = TraceColumns::from_flat_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: flat decode failed: {e:?}"));
        assert_eq!(
            trace_digest_columnar(&columns),
            trace_digest_columnar(&back),
            "seed {seed}: flat roundtrip changed the event stream"
        );
        assert_eq!(
            back.to_flat_bytes(),
            bytes,
            "seed {seed}: re-encoding is not byte-stable"
        );
    }
}

#[test]
fn sessions_and_training_corpora_are_byte_identical_on_golden_seeds() {
    for seed in SEEDS {
        let cfg = replay_scenario_config(&ReplayOptions::for_seed(seed));
        let world = World::generate(&cfg.world);
        let population = Population::generate(&world, &cfg.population);
        let trace = Trace::generate(&world, &population, &cfg.trace);
        let columns = generate_columnar(&world, &population, &cfg.trace);
        let blocklist = world.blocklist();
        let source = SessionSource::new(&columns, cfg.pipeline.session_window_ms(), DAY_MS);
        let mut scratch = Vec::new();

        for day in 0..cfg.trace.days {
            // Legacy sessions: the scenario anchor rule, one user at a
            // time, through `Trace::window` + `Session::from_window`.
            for u in 0..population.len() as u32 {
                let last = trace
                    .user_requests(UserId(u))
                    .filter(|r| r.t_ms >= day as u64 * DAY_MS && r.t_ms < (day as u64 + 1) * DAY_MS)
                    .last();
                let legacy = last.map(|last| {
                    let names: Vec<&str> = trace
                        .window(UserId(u), last.t_ms, cfg.pipeline.session_window_ms())
                        .into_iter()
                        .map(|h| world.hostname(h))
                        .collect();
                    Session::from_window(names, Some(blocklist))
                });
                let columnar = source.day_session(u, day, Some(blocklist), &mut scratch);
                assert_eq!(
                    legacy.as_ref().map(Session::hostnames),
                    columnar.as_ref().map(Session::hostnames),
                    "seed {seed}, user {u}, day {day}: session diverged"
                );
            }

            // Legacy training corpus vs the borrowed columnar one.
            let legacy: Vec<Vec<&str>> = trace
                .daily_sequences(day)
                .into_iter()
                .map(|(_, seq)| seq.into_iter().map(|h| world.hostname(h)).collect())
                .collect();
            assert_eq!(
                legacy,
                source.train_sequences(day),
                "seed {seed}, day {day}: training corpus diverged"
            );
        }
    }
}

proptest! {
    /// Random tiny worlds: every per-user column and every random window
    /// agrees between the two paths, not just the golden seeds.
    #[test]
    fn columnar_matches_legacy_on_arbitrary_seeds(
        seed in any::<u64>(),
        users in 1usize..16,
        days in 1u32..4,
        window_idx in 0usize..4,
    ) {
        let window_ms = [1u64, 60_000, 1_200_000, DAY_MS][window_idx];
        let mut cfg = ScenarioConfig::tiny();
        cfg.world.seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        cfg.population.seed = seed.rotate_left(17) ^ 0x5eed;
        cfg.population.num_users = users;
        cfg.trace.seed = seed.rotate_left(41);
        cfg.trace.days = days;
        let (world, population, trace, columns) = generate_both(&cfg);
        prop_assert_eq!(population.len(), columns.num_users());
        prop_assert_eq!(trace.requests().len(), columns.num_events());

        for u in 0..population.len() as u32 {
            let times: Vec<u64> = trace.user_requests(UserId(u)).map(|r| r.t_ms).collect();
            let col_times: Vec<u64> =
                columns.user_times(u).iter().map(|&t| t as u64).collect();
            prop_assert_eq!(&times, &col_times, "user {} times diverged", u);
            let hosts: Vec<&str> = trace
                .user_requests(UserId(u))
                .map(|r| world.hostname(r.host))
                .collect();
            let col_hosts: Vec<&str> = columns
                .user_hosts(u)
                .iter()
                .map(|&h| columns.host_name(h))
                .collect();
            prop_assert_eq!(hosts, col_hosts, "user {} hosts diverged", u);

            // A window anchored at every event time must agree too —
            // this pins the half-open/epoch boundary semantics.
            let mut out = Vec::new();
            for &t in times.iter().take(8) {
                let legacy: Vec<&str> = trace
                    .window(UserId(u), t, window_ms)
                    .into_iter()
                    .map(|h| world.hostname(h))
                    .collect();
                out.clear();
                columns.window_hosts(u, t, window_ms, &mut out);
                let columnar: Vec<&str> =
                    out.iter().map(|&h| columns.host_name(h)).collect();
                prop_assert_eq!(legacy, columnar, "user {} window at {} diverged", u, t);
            }
        }
    }
}
