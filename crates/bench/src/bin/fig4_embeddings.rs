//! E3 — Figures 4 and 5: the embedding space.
//!
//! The paper trains on one day of data, collapses hostnames to
//! second-level domains (470 K → <3 K points), projects the embeddings to
//! 2-D with t-SNE and argues qualitatively that topical clusters emerge
//! (porn, sports-streaming, travel). With ground truth available we also
//! quantify it: same-topic neighbor purity and the intra/inter cosine gap,
//! plus a dump of the tightest clusters (the Figure 5 rectangles).

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results, Scale};
use hostprof_stats::{neighbor_purity, similarity_gap, BhTsne, BhTsneConfig};
use hostprof_synth::names::second_level_domain;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Fig4Results {
    scale: String,
    embedded_domains: usize,
    neighbor_purity_k10: f64,
    label_frequency_baseline: f64,
    intra_topic_cosine: f64,
    inter_topic_cosine: f64,
    example_clusters: Vec<(String, Vec<String>)>,
    tsne_sample: Vec<(String, f64, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let pipeline = s.pipeline();

    // The paper trains this figure on a single day of 1329 real users —
    // far more tokens than one synthetic day produces. We keep the token
    // budget honest by using the whole trace (see the `embed_quality`
    // sweep for the sensitivity), collapsed to second-level domains
    // exactly as the paper does for readability.
    let mut sequences: Vec<Vec<String>> = Vec::new();
    for day in 0..s.trace.days() {
        sequences.extend(s.daily_hostname_sequences(day).into_iter().map(|seq| {
            seq.iter()
                .map(|h| second_level_domain(h).to_string())
                .collect::<Vec<String>>()
        }));
    }
    let embeddings = pipeline.train_model(&sequences).expect("day 0 has traffic");

    header(&format!(
        "Figure 4/5 — embedding space (scale: {})",
        scale.label()
    ));
    row("second-level domains embedded", embeddings.len());

    // Ground-truth topic per embedded domain: the dominant top-level topic
    // among hosts sharing that second-level domain.
    let hierarchy = s.world.hierarchy();
    let mut domain_topic: HashMap<&str, usize> = HashMap::new();
    for h in s.world.hosts() {
        if let Some(t) = h.top_topic {
            domain_topic
                .entry(second_level_domain(&h.name))
                .or_insert(t.index());
        }
    }

    let mut points: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (idx, token) in embeddings.vocab().iter() {
        if let Some(&topic) = domain_topic.get(token) {
            points.extend_from_slice(embeddings.vector_by_index(idx));
            labels.push(topic);
            names.push(token.to_string());
        }
    }
    let dim = embeddings.dim();
    let purity = neighbor_purity(&points, dim, &labels, 10);
    // Random-embedding baseline: expected same-label fraction.
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for l in &labels {
        *counts.entry(*l).or_insert(0) += 1;
    }
    let baseline: f64 = counts
        .values()
        .map(|&c| (c as f64 / labels.len() as f64).powi(2))
        .sum();
    let (intra, inter) = similarity_gap(&points, dim, &labels);

    row("same-topic neighbor purity @10", format!("{purity:.3}"));
    row("label-frequency baseline", format!("{baseline:.3}"));
    row("intra-topic cosine", format!("{intra:.3}"));
    row("inter-topic cosine", format!("{inter:.3}"));

    // Figure 5 analogues: the three topics with the purest neighborhoods,
    // with a few member domains each.
    let mut per_topic_purity: HashMap<usize, (f64, usize)> = HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        let vi = &points[i * dim..(i + 1) * dim];
        let mut sims: Vec<(f64, usize)> = (0..labels.len())
            .filter(|&j| j != i)
            .map(|j| {
                let vj = &points[j * dim..(j + 1) * dim];
                let dot: f64 = vi
                    .iter()
                    .zip(vj)
                    .map(|(a, b)| (*a as f64) * (*b as f64))
                    .sum();
                (dot, j)
            })
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let same = sims[..5.min(sims.len())]
            .iter()
            .filter(|(_, j)| labels[*j] == l)
            .count();
        let e = per_topic_purity.entry(l).or_insert((0.0, 0));
        e.0 += same as f64 / 5.0;
        e.1 += 1;
    }
    let mut topic_scores: Vec<(usize, f64, usize)> = per_topic_purity
        .into_iter()
        .filter(|(_, (_, n))| *n >= 5)
        .map(|(t, (sum, n))| (t, sum / n as f64, n))
        .collect();
    topic_scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!("\n  tightest topical clusters (Figure 5 analogues):");
    let mut example_clusters = Vec::new();
    for (topic, score, n) in topic_scores.iter().take(3) {
        let topic_name = hierarchy.top_name(hostprof_ontology::TopCategoryId(*topic as u8));
        let members: Vec<String> = names
            .iter()
            .zip(&labels)
            .filter(|(_, l)| **l == *topic)
            .take(6)
            .map(|(n, _)| n.clone())
            .collect();
        println!(
            "    {:<28} purity {:.2} over {} domains: {}",
            topic_name,
            score,
            n,
            members.join(", ")
        );
        example_clusters.push((topic_name.to_string(), members));
    }

    // Barnes–Hut t-SNE over the FULL labeled domain set (O(n log n) per
    // iteration, so no subsampling needed — the exact reducer in
    // `hostprof_stats::tsne` is kept for small inputs and as the reference
    // implementation).
    let y = BhTsne::new(BhTsneConfig {
        perplexity: 25.0,
        iterations: 350,
        ..BhTsneConfig::default()
    })
    .embed(&points, dim);
    let tsne_sample: Vec<(String, f64, f64)> = names
        .iter()
        .zip(&y)
        .map(|(n, (x, yy))| (n.clone(), *x, *yy))
        .step_by((y.len() / 80).max(1))
        .collect();
    row("t-SNE points computed (Barnes–Hut)", y.len());

    println!("\n  paper: qualitative clusters (porn / sport streaming / travel) in t-SNE space");
    println!("  shape check: purity ≫ label-frequency baseline and intra ≫ inter cosine");

    write_results(
        "fig4_embeddings",
        &Fig4Results {
            scale: scale.label().to_string(),
            embedded_domains: embeddings.len(),
            neighbor_purity_k10: purity,
            label_frequency_baseline: baseline,
            intra_topic_cosine: intra,
            inter_topic_cosine: inter,
            example_clusters,
            tsne_sample,
        },
    );
}
