//! Property-based tests across the workspace: codec roundtrips, parser
//! robustness on arbitrary bytes, and algebraic invariants of the core
//! data structures.

use hostprof::net::{dns::DnsQuery, quic::InitialPacket, tls, ParseError};
use hostprof::ontology::{CategoryId, CategoryVector};
use hostprof::profiling::Session;
use hostprof::stats::Ccdf;
use proptest::prelude::*;

/// A plausible hostname: 1–4 lowercase alphanumeric labels joined by dots.
fn hostname_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9-]{0,14}[a-z0-9]", 1..=4)
        .prop_map(|labels| labels.join("."))
}

/// Sparse category pairs within the harmonized space.
fn category_pairs() -> impl Strategy<Value = Vec<(CategoryId, f32)>> {
    proptest::collection::vec((0u16..328, 0.0f32..=1.0), 0..12)
        .prop_map(|v| v.into_iter().map(|(c, w)| (CategoryId(c), w)).collect())
}

proptest! {
    #[test]
    fn tls_client_hello_roundtrips(host in hostname_strategy()) {
        let ch = tls::ClientHello::for_hostname(&host);
        let bytes = ch.encode();
        let back = tls::ClientHello::parse(&bytes).unwrap();
        prop_assert_eq!(&ch, &back);
        prop_assert_eq!(back.sni(), Some(host.as_str()));
        prop_assert_eq!(tls::extract_sni(&bytes).unwrap(), Some(host.as_str()));
    }

    #[test]
    fn quic_initial_roundtrips(host in hostname_strategy()) {
        let pkt = InitialPacket::for_hostname(&host);
        let bytes = pkt.encode();
        let back = InitialPacket::parse(&bytes).unwrap();
        let hello = back.client_hello().unwrap();
        prop_assert_eq!(hello.sni(), Some(host.as_str()));
    }

    #[test]
    fn dns_query_roundtrips(host in hostname_strategy()) {
        let q = DnsQuery::for_hostname(&host);
        let back = DnsQuery::parse(&q.encode()).unwrap();
        prop_assert_eq!(back.qname, host);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Whatever the input, parsers return Ok or a typed error — no
        // panics, no UB, no unbounded allocation.
        let _: Result<_, ParseError> = tls::ClientHello::parse(&bytes);
        let _ = tls::extract_sni(&bytes);
        let _ = InitialPacket::parse(&bytes);
        let _ = DnsQuery::parse(&bytes);
    }

    #[test]
    fn parsers_never_panic_on_truncated_valid_messages(
        host in hostname_strategy(),
        cut_permille in 0u32..1000,
    ) {
        let bytes = tls::ClientHello::for_hostname(&host).encode();
        let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
        prop_assert!(tls::ClientHello::parse(&bytes[..cut]).is_err());
    }

    #[test]
    fn category_vector_ops_match_dense_reference(a in category_pairs(), b in category_pairs()) {
        let va = CategoryVector::from_pairs(a);
        let vb = CategoryVector::from_pairs(b);
        let da = va.to_dense(328);
        let db = vb.to_dense(328);
        let dot: f32 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        let eucl: f32 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt();
        prop_assert!((va.dot(&vb) - dot).abs() < 1e-4);
        prop_assert!((va.euclidean(&vb) - eucl).abs() < 1e-3);
        // Cosine is symmetric and bounded.
        let c = va.cosine(&vb);
        prop_assert!((c - vb.cosine(&va)).abs() < 1e-6);
        prop_assert!((-1.0..=1.0001).contains(&c));
    }

    #[test]
    fn category_vector_weights_stay_in_unit_interval(a in category_pairs()) {
        let v = CategoryVector::from_pairs(a);
        for (_, w) in v.iter() {
            prop_assert!((0.0..=1.0).contains(&w));
        }
        // top_k never increases length and keeps the max weight.
        let t = v.top_k(3);
        prop_assert!(t.len() <= 3.min(v.len()));
        if let (Some(am), Some(tm)) = (v.argmax(), t.argmax()) {
            prop_assert!((v.get(am) - t.get(tm)).abs() < 1e-6);
        }
    }

    #[test]
    fn ccdf_is_monotone_and_bounded(sample in proptest::collection::vec(0usize..5000, 1..200)) {
        let c = Ccdf::from_counts(sample.clone());
        let mut prev = 1.0f64;
        for x in [0.0, 1.0, 10.0, 100.0, 1000.0, 5000.0] {
            let f = c.fraction_at_least(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-12, "survival is non-increasing");
            prev = f;
        }
        // Inverse query consistency.
        for frac in [0.25, 0.5, 0.75] {
            let v = c.value_at_fraction(frac).unwrap();
            prop_assert!(c.fraction_at_least(v) >= frac - 1e-12);
        }
    }

    #[test]
    fn session_dedup_is_idempotent_and_order_preserving(
        hosts in proptest::collection::vec(hostname_strategy(), 0..40),
    ) {
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let s1 = Session::from_window(refs.iter().copied(), None);
        let s2 = Session::from_window(s1.iter(), None);
        prop_assert_eq!(&s1, &s2, "already-deduped input is a fixed point");
        // No duplicates, all lowercase, subset of input.
        let mut seen = std::collections::HashSet::new();
        for h in s1.iter() {
            prop_assert!(seen.insert(h.to_string()));
            prop_assert!(hosts.iter().any(|x| x.eq_ignore_ascii_case(h)));
        }
    }

    #[test]
    fn varint_roundtrips(v in 0u64..=0x3fff_ffff_ffff_ffff) {
        let mut buf = Vec::new();
        hostprof::net::quic::encode_varint(&mut buf, v);
        // Minimal-length classes per RFC 9000 §16.
        let expect_len = match v {
            0..=0x3f => 1,
            0x40..=0x3fff => 2,
            0x4000..=0x3fff_ffff => 4,
            _ => 8,
        };
        prop_assert_eq!(buf.len(), expect_len);
        // Decode inverts encode and consumes exactly the encoding.
        let (back, used) = hostprof::net::quic::decode_varint(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
        // Trailing bytes are left untouched.
        buf.extend_from_slice(&[0xaa, 0xbb]);
        let (again, used2) = hostprof::net::quic::decode_varint(&buf).unwrap();
        prop_assert_eq!(again, v);
        prop_assert_eq!(used2, buf.len() - 2);
    }

    #[test]
    fn varint_non_minimal_encodings_decode_to_the_same_value(v in 0u64..=0x3fff_ffff) {
        // RFC 9000 §16 requires receivers to accept non-minimal encodings:
        // widen each value into every larger length class by hand.
        let widened: Vec<Vec<u8>> = [
            (v <= 0x3f).then(|| (0x4000u16 | v as u16).to_be_bytes().to_vec()),
            (v <= 0x3fff).then(|| (0x8000_0000u32 | v as u32).to_be_bytes().to_vec()),
            Some((0xc000_0000_0000_0000u64 | v).to_be_bytes().to_vec()),
        ]
        .into_iter()
        .flatten()
        .collect();
        for enc in widened {
            let (back, used) = hostprof::net::quic::decode_varint(&enc).unwrap();
            prop_assert_eq!(back, v, "non-minimal {}-byte form", enc.len());
            prop_assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn sni_extension_roundtrips(host in hostname_strategy()) {
        let body = tls::encode_sni_extension(&host);
        let back = tls::parse_sni_extension(&body).unwrap();
        prop_assert_eq!(back, Some(host.as_str()));
        // Any strict prefix is a typed error or a hostname actually present
        // in the bytes — never a panic.
        for cut in 0..body.len() {
            let _ = tls::parse_sni_extension(&body[..cut]);
        }
    }

    #[test]
    fn sni_extension_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = tls::parse_sni_extension(&bytes);
    }

    #[test]
    fn capture_prefixes_never_panic(
        hosts in proptest::collection::vec(hostname_strategy(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        use hostprof::net::{CaptureReader, CaptureWriter, TrafficSynthesizer, RequestEvent};
        let events: Vec<RequestEvent> = hosts.iter().enumerate().map(|(i, h)| RequestEvent {
            t_ms: i as u64 * 100,
            client: i as u32 % 3,
            hostname: h.clone(),
        }).collect();
        let packets = TrafficSynthesizer::default().synthesize(&events);
        let mut w = CaptureWriter::new(Vec::new()).unwrap();
        for p in &packets {
            w.write_packet(p).unwrap();
        }
        let full = w.finish().unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        // Any prefix of a valid capture: packets up to the cut decode
        // byte-identically, then one Ok(None) (clean EOF) or typed error —
        // never a panic.
        match CaptureReader::new(&full[..cut]) {
            Err(_) => {} // header itself truncated: typed error
            Ok(mut r) => {
                let mut decoded = 0usize;
                while let Ok(Some(pkt)) = r.read_packet() {
                    prop_assert_eq!(&pkt, &packets[decoded]);
                    decoded += 1;
                }
            }
        }
    }
}

/// The varint length-class boundaries, 2^62 − 1 (the largest encodable
/// value) included, pinned exactly.
#[test]
fn varint_boundaries_are_exact() {
    use hostprof::net::quic::{decode_varint, encode_varint};
    for (v, len) in [
        (0u64, 1usize),
        (0x3f, 1),
        (0x40, 2),
        (0x3fff, 2),
        (0x4000, 4),
        (0x3fff_ffff, 4),
        (0x4000_0000, 8),
        ((1u64 << 62) - 1, 8),
    ] {
        let mut buf = Vec::new();
        encode_varint(&mut buf, v);
        assert_eq!(buf.len(), len, "encoding width of {v:#x}");
        assert_eq!(
            decode_varint(&buf).unwrap(),
            (v, len),
            "round-trip of {v:#x}"
        );
    }
    // Decoding an empty or cut-off encoding is a typed error.
    assert!(decode_varint(&[]).is_err());
    assert!(decode_varint(&[0x80, 0x01]).is_err());
    assert!(decode_varint(&[0xc0]).is_err());
}
