//! The `hostprof` command-line tool.
//!
//! A thin operational wrapper over the library: generate a deterministic
//! scenario, train and persist a model, query the embedding space, profile
//! a user, run the observer under countermeasures, or run the full CTR
//! experiment — all without writing Rust.
//!
//! ```text
//! hostprof train   [--scale S] [--days N] --out model.json
//! hostprof similar --model model.json --host <hostname> [--top N]
//! hostprof profile [--scale S] --model model.json --user N [--day D]
//!                  [--index exact|ivf] [--nprobe N]
//! hostprof observe [--scale S] [--ech F] [--nat N] [--dns] [--save cap.hpcap]
//! hostprof replay  --capture cap.hpcap [--dns]
//! hostprof experiment [--scale S]
//! ```
//!
//! `--scale` is `tiny` (default), `small`, `default` or `large` and
//! selects the same deterministic scenarios the experiment binaries use
//! (`large` is the 10⁶-user columnar tier; expect minutes, not seconds).

use hostprof::ads::{CtrExperiment, ExperimentConfig};
use hostprof::bridge::{ObservedTrace, ObserverScenario};
use hostprof::embed::{IndexConfig, KernelChoice, Sharding};
use hostprof::profiling::{profile_accuracy, Session};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof::stats::paired_t_test;
use hostprof::storage;
use hostprof::synth::UserId;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs plus boolean `--key`.
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{}'", raw[i]))?;
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                values.insert(key.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Self { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        // `--top --dns` parses --top as a bare flag; surface that as the
        // missing-value error it really is instead of silently ignoring it.
        if self.flags.iter().any(|f| f == key) {
            return Err(format!("--{key} requires a value"));
        }
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Reject unknown options so typos fail loudly instead of silently
    /// falling back to defaults.
    fn expect_keys(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.values.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown option --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

fn scenario_config(args: &Args) -> Result<ScenarioConfig, String> {
    let mut cfg = match args.get("scale").unwrap_or("tiny") {
        "tiny" => ScenarioConfig::tiny(),
        "small" => ScenarioConfig::small(),
        "default" | "full" => ScenarioConfig::paper_month(),
        "large" => ScenarioConfig::large(),
        other => return Err(format!("unknown scale '{other}'")),
    };
    if let Some(days) = args.get_parsed::<u32>("days")? {
        cfg.trace.days = days;
    }
    if let Some(users) = args.get_parsed::<usize>("users")? {
        cfg.population.num_users = users;
    }
    Ok(cfg)
}

fn cmd_train(args: &Args) -> Result<(), String> {
    args.expect_keys(&["scale", "days", "users", "out", "threads", "kernel"])?;
    let out: PathBuf = args.get("out").ok_or("train requires --out <path>")?.into();
    let mut cfg = scenario_config(args)?;
    if let Some(threads) = args.get_parsed::<usize>("threads")? {
        cfg.pipeline.skipgram.threads = threads;
    }
    if let Some(kernel) = args.get_parsed::<KernelChoice>("kernel")? {
        cfg.pipeline.skipgram.kernel = kernel;
    }
    let s = Scenario::generate(&cfg);
    eprintln!(
        "generated scenario: {} hosts, {} users, {} days",
        s.world.num_hosts(),
        s.population.len(),
        s.trace.days()
    );
    let pipeline = s.pipeline();
    let mut corpus = Vec::new();
    for day in 0..s.trace.days() {
        corpus.extend(s.daily_hostname_sequences(day));
    }
    let (model, stats) = pipeline.train_model_with_stats(&corpus)?;
    storage::save_model(&out, &model).map_err(|e| e.to_string())?;
    println!(
        "trained {}-d embeddings for {} hostnames → {}",
        model.dim(),
        model.len(),
        out.display()
    );
    println!(
        "  {} tokens in {:.2}s on {} thread(s) ({} kernel) → {:.0} tokens/s, \
         LR schedule coverage {:.4}",
        stats.processed_tokens,
        stats.elapsed_secs,
        stats.threads,
        if stats.simd_accelerated {
            "simd"
        } else {
            "scalar"
        },
        stats.tokens_per_sec(),
        stats.lr_coverage(),
    );
    Ok(())
}

fn cmd_similar(args: &Args) -> Result<(), String> {
    args.expect_keys(&["model", "host", "top"])?;
    let model_path: PathBuf = args
        .get("model")
        .ok_or("similar requires --model <path>")?
        .into();
    let host = args.get("host").ok_or("similar requires --host <name>")?;
    let top = args.get_parsed::<usize>("top")?.unwrap_or(10);
    let model = storage::load_model(&model_path).map_err(|e| e.to_string())?;
    let sims = model.most_similar(host, top);
    if sims.is_empty() {
        return Err(format!("'{host}' is not in the model vocabulary"));
    }
    println!("{:<40} cosine", "hostname");
    for (name, sim) in sims {
        println!("{name:<40} {sim:.3}");
    }
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    args.expect_keys(&[
        "scale", "days", "users", "model", "user", "day", "index", "nprobe",
    ])?;
    let model_path: PathBuf = args
        .get("model")
        .ok_or("profile requires --model <path>")?
        .into();
    let user = UserId(
        args.get_parsed::<u32>("user")?
            .ok_or("profile requires --user <index>")?,
    );
    let mut cfg = scenario_config(args)?;
    let nprobe = args.get_parsed::<usize>("nprobe")?;
    match args.get("index").unwrap_or("exact") {
        "exact" => {
            if nprobe.is_some() {
                return Err("--nprobe only applies to --index ivf".into());
            }
        }
        "ivf" => {
            cfg.pipeline.profiler.index = IndexConfig::ivf(nprobe.unwrap_or(8).max(1));
        }
        other => return Err(format!("unknown index '{other}' (expected exact or ivf)")),
    }
    let s = Scenario::generate(&cfg);
    let day = args
        .get_parsed::<u32>("day")?
        .unwrap_or(s.trace.days().saturating_sub(1));
    if user.index() >= s.population.len() {
        return Err(format!(
            "user {} out of range (population {})",
            user.0,
            s.population.len()
        ));
    }
    let model = storage::load_model(&model_path).map_err(|e| e.to_string())?;
    let pipeline = s.pipeline();
    let profiler = pipeline.profiler(&model, s.world.ontology());
    let window = s.session_hostnames(user, day);
    if window.is_empty() {
        return Err(format!("user {} was idle on day {day}", user.0));
    }
    let session = Session::from_window(
        window.iter().map(String::as_str),
        Some(pipeline.blocklist()),
    );
    let profile = profiler
        .profile(&session)
        .ok_or("session carries no profiling signal")?;
    println!(
        "user {} day {day}: session of {} hostnames ({} knn)",
        user.0,
        session.len(),
        profiler.index().name()
    );
    let hierarchy = s.world.hierarchy();
    let mut pairs: Vec<_> = profile.categories.iter().collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (cat, w) in pairs.into_iter().take(8) {
        println!("  {:<44} {w:.2}", hierarchy.category_name(cat));
    }
    let truth = &s.population.user(user).interests;
    println!(
        "ground-truth cosine: {:.3}",
        profile_accuracy(&profile.categories, truth)
    );
    Ok(())
}

/// One-line error-taxonomy breakdown shared by `observe` and `replay`.
fn print_taxonomy(st: &hostprof::net::ObserverStats) {
    println!(
        "error taxonomy        : {} truncated, {} bad-length, {} overflow, {} evicted, {} garbage (invariant breaches: {})",
        st.truncated_records,
        st.bad_lengths,
        st.reassembly_overflow,
        st.evicted_mid_handshake,
        st.garbage,
        st.reassembly_invariant,
    );
}

fn cmd_observe(args: &Args) -> Result<(), String> {
    args.expect_keys(&[
        "scale", "days", "users", "ech", "nat", "dns", "save", "chaos",
    ])?;
    let cfg = scenario_config(args)?;
    let s = Scenario::generate(&cfg);
    // Optional capture recording: lower the whole trace to packets and
    // save them before (or instead of) analyzing.
    let save: Option<PathBuf> = args.get("save").map(PathBuf::from);
    let mut scenario = ObserverScenario::per_user();
    if let Some(frac) = args.get_parsed::<f64>("ech")? {
        scenario.synthesizer.ech_fraction = frac;
        scenario.synthesizer.quic_fraction = 0.0;
    }
    if let Some(n) = args.get_parsed::<u32>("nat")? {
        scenario = ObserverScenario {
            synthesizer: hostprof::net::TrafficSynthesizer {
                addressing: hostprof::net::Addressing::Nat {
                    base_ip: 0x0a00_0000,
                    clients_per_ip: n,
                },
                ..scenario.synthesizer
            },
            ..scenario
        };
    }
    if args.flag("dns") {
        scenario.synthesizer.dns_fraction = 1.0;
        scenario.harvest_dns = true;
    }
    if let Some(seed) = args.get_parsed::<u64>("chaos")? {
        scenario.chaos = Some(hostprof::net::ChaosConfig::with_seed(seed));
    }
    if let Some(path) = save {
        let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
        let mut writer = hostprof::net::CaptureWriter::new(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        for r in s.trace.requests() {
            let ev = hostprof::net::RequestEvent {
                t_ms: r.t_ms,
                client: r.user.0,
                hostname: s.world.hostname(r.host).to_string(),
            };
            for pkt in scenario.synthesizer.packets_for(&ev) {
                writer.write_packet(&pkt).map_err(|e| e.to_string())?;
            }
        }
        let n = writer.packets();
        writer.finish().map_err(|e| e.to_string())?;
        println!("wrote {n} packets → {}", path.display());
    }
    let obs = ObservedTrace::capture(&s.world, &s.trace, &scenario);
    println!("ground-truth requests : {}", obs.ground_truth_requests);
    println!("hostnames recovered   : {:.1}%", obs.fidelity() * 100.0);
    println!("client addresses seen : {}", obs.sequences.len());
    let st = obs.observer_stats;
    println!(
        "sources               : {} TLS SNI, {} QUIC SNI, {} DNS",
        st.tls_sni, st.quic_sni, st.dns_names
    );
    println!(
        "hidden / errors       : {} / {} (reassembled: {})",
        st.hidden, st.parse_errors, st.reassembled
    );
    print_taxonomy(&st);
    println!(
        "flows                 : {} created, {} packets",
        obs.flow_stats.flows_created, obs.flow_stats.packets
    );
    if let Some(cs) = obs.chaos_stats {
        println!(
            "chaos                 : {} -> {} packets; {} clean / {} mutated / {} garbage flows",
            cs.packets_in, cs.packets_out, cs.clean_flows, cs.mutated_flows, cs.garbage_flows
        );
    }
    Ok(())
}

/// Dispatch between the two replay modes: `--capture` re-reads a saved
/// packet capture through the observer; `--golden` runs the pinned
/// end-to-end conformance replay against committed snapshots.
fn cmd_replay(args: &Args) -> Result<(), String> {
    if args.get("capture").is_some() || args.flag("capture") {
        cmd_replay_capture(args)
    } else {
        cmd_replay_conformance(args)
    }
}

fn cmd_replay_conformance(args: &Args) -> Result<(), String> {
    args.expect_keys(&[
        "seed", "golden", "bless", "threads", "kernel", "sharding", "update", "defense",
    ])?;
    let golden_dir: PathBuf = args
        .get("golden")
        .ok_or(
            "replay requires --capture <path> (capture mode) or --golden <dir> (conformance mode)",
        )?
        .into();
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(1);
    let mut opts = hostprof::replay::ReplayOptions::for_seed(seed);
    if let Some(threads) = args.get_parsed::<usize>("threads")? {
        opts.profile_threads = threads;
    }
    if let Some(kernel) = args.get_parsed::<KernelChoice>("kernel")? {
        opts.kernel = kernel;
    }
    if let Some(sharding) = args.get_parsed::<Sharding>("sharding")? {
        opts.sharding = sharding;
    }
    if args.flag("update") {
        return cmd_replay_update(args, &opts, &golden_dir, seed);
    }
    if args.flag("defense") {
        return cmd_replay_defense(args, &opts, &golden_dir, seed);
    }

    let snapshot = hostprof::replay::run_replay(&opts)?;
    let path = hostprof::replay::golden_path(&golden_dir, seed);
    if args.flag("bless") {
        std::fs::create_dir_all(&golden_dir).map_err(|e| e.to_string())?;
        std::fs::write(&path, hostprof::replay::to_golden_json(&snapshot)?)
            .map_err(|e| e.to_string())?;
        println!("blessed {}", path.display());
        return Ok(());
    }
    let contents = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read golden {}: {e} (run with --bless to create it)",
            path.display()
        )
    })?;
    let expected = hostprof::replay::from_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_snapshots(&expected, &snapshot);
    if diffs.is_empty() {
        println!(
            "replay seed {seed}: OK — {} profiles, {} CTR rows, all stage digests match {}",
            snapshot.profiles.len(),
            snapshot.ctr.len(),
            path.display()
        );
        Ok(())
    } else {
        for d in &diffs {
            eprintln!("  {d}");
        }
        Err(format!(
            "replay seed {seed}: {} divergence(s) from {}",
            diffs.len(),
            path.display()
        ))
    }
}

/// Conformance for the online-update schedule ({train → serve →
/// incremental update → serve}), `hostprof replay --update`. Like the
/// batch replay, this path owns blessing: the canonical golden is the
/// single-lane run, and `serve --golden` must *reproduce* it at every
/// lane count.
fn cmd_replay_update(
    args: &Args,
    opts: &hostprof::replay::ReplayOptions,
    golden_dir: &std::path::Path,
    seed: u64,
) -> Result<(), String> {
    let snapshot = hostprof::replay::run_update_replay(opts, 1)?;
    let path = hostprof::replay::update_golden_path(golden_dir, seed);
    if args.flag("bless") {
        std::fs::create_dir_all(golden_dir).map_err(|e| e.to_string())?;
        std::fs::write(&path, hostprof::replay::to_update_golden_json(&snapshot)?)
            .map_err(|e| e.to_string())?;
        println!("blessed {}", path.display());
        return Ok(());
    }
    let contents = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read golden {}: {e} (run with --bless to create it)",
            path.display()
        )
    })?;
    let expected = hostprof::replay::from_update_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_update_snapshots(&expected, &snapshot);
    if diffs.is_empty() {
        println!(
            "replay --update seed {seed}: OK — vocab {} → {} (+{}), {} profiles, \
             all stage digests match {}",
            snapshot.base_vocab,
            snapshot.grown_vocab,
            snapshot.appended_tokens,
            snapshot.profiles.len(),
            path.display()
        );
        Ok(())
    } else {
        for d in &diffs {
            eprintln!("  {d}");
        }
        Err(format!(
            "replay --update seed {seed}: {} divergence(s) from {}",
            diffs.len(),
            path.display()
        ))
    }
}

/// Conformance for the defense schedule (§15: every defense axis through
/// capture → train → serve), `hostprof replay --defense`. The canonical
/// golden is the single-lane run; `serve --golden` reproduces it at every
/// lane count.
fn cmd_replay_defense(
    args: &Args,
    opts: &hostprof::replay::ReplayOptions,
    golden_dir: &std::path::Path,
    seed: u64,
) -> Result<(), String> {
    let snapshot = hostprof::replay::run_defense_replay(opts, 1)?;
    let path = hostprof::replay::defense_golden_path(golden_dir, seed);
    if args.flag("bless") {
        std::fs::create_dir_all(golden_dir).map_err(|e| e.to_string())?;
        std::fs::write(&path, hostprof::replay::to_defense_golden_json(&snapshot)?)
            .map_err(|e| e.to_string())?;
        println!("blessed {}", path.display());
        return Ok(());
    }
    let contents = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read golden {}: {e} (run with --bless to create it)",
            path.display()
        )
    })?;
    let expected = hostprof::replay::from_defense_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_defense_snapshots(&expected, &snapshot);
    if diffs.is_empty() {
        println!(
            "replay --defense seed {seed}: OK — {} cases (identity bit-equal to baseline), \
             all digests match {}",
            snapshot.cases.len(),
            path.display()
        );
        Ok(())
    } else {
        for d in &diffs {
            eprintln!("  {d}");
        }
        Err(format!(
            "replay --defense seed {seed}: {} divergence(s) from {}",
            diffs.len(),
            path.display()
        ))
    }
}

fn cmd_replay_capture(args: &Args) -> Result<(), String> {
    args.expect_keys(&["capture", "dns"])?;
    let path: PathBuf = args
        .get("capture")
        .ok_or("replay requires --capture <path>")?
        .into();
    let file = std::fs::File::open(&path).map_err(|e| e.to_string())?;
    let reader = hostprof::net::CaptureReader::new(std::io::BufReader::new(file))
        .map_err(|e| e.to_string())?;
    let mut observer = if args.flag("dns") {
        hostprof::net::SniObserver::new().with_dns_harvesting()
    } else {
        hostprof::net::SniObserver::new()
    };
    let packets = reader.read_all().map_err(|e| e.to_string())?;
    observer.process_stream(&packets);
    let st = observer.stats();
    println!("packets               : {}", st.packets);
    println!(
        "hostnames recovered   : {} TLS + {} QUIC + {} DNS",
        st.tls_sni, st.quic_sni, st.dns_names
    );
    println!(
        "hidden / errors       : {} / {} (reassembled: {})",
        st.hidden, st.parse_errors, st.reassembled
    );
    print_taxonomy(&st);
    println!(
        "clients seen          : {}",
        observer.per_client_sequences().len()
    );
    Ok(())
}

/// Dispatch between the two serve modes: `--golden` runs the streaming
/// conformance replay against the committed batch-path snapshots; anything
/// else is a live calibrated load run through the serving engine.
fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.get("golden").is_some() || args.flag("golden") {
        cmd_serve_golden(args)
    } else {
        cmd_serve_live(args)
    }
}

/// Streaming conformance: re-run the pinned replay with stage 5 computed
/// by the `ServeEngine` (packets → lanes → windower → watermark ticks)
/// and require the snapshot to match the committed golden byte for byte.
/// There is deliberately no `--bless` here — goldens are blessed by the
/// batch path; the streaming path must *reproduce* them.
fn cmd_serve_golden(args: &Args) -> Result<(), String> {
    args.expect_keys(&["golden", "seed", "lanes", "threads"])?;
    let golden_dir: PathBuf = args
        .get("golden")
        .ok_or("serve --golden requires a directory")?
        .into();
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(1);
    let lanes = args.get_parsed::<usize>("lanes")?.unwrap_or(1).max(1);
    let mut opts = hostprof::replay::ReplayOptions::for_seed(seed);
    if let Some(threads) = args.get_parsed::<usize>("threads")? {
        opts.profile_threads = threads;
    }
    let snapshot = hostprof::replay::run_replay_with(
        &opts,
        hostprof::replay::ProfilePath::Streaming { lanes },
    )?;
    let path = hostprof::replay::golden_path(&golden_dir, seed);
    let contents = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read golden {}: {e} (bless it via `hostprof replay --golden ... --bless` first)",
            path.display()
        )
    })?;
    let expected = hostprof::replay::from_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_snapshots(&expected, &snapshot);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  {d}");
        }
        return Err(format!(
            "serve --golden seed {seed} lanes {lanes}: {} divergence(s) from {}",
            diffs.len(),
            path.display()
        ));
    }
    println!(
        "serve --golden seed {seed} lanes {lanes}: OK — streaming profiles bit-identical \
         to the batch goldens in {}",
        path.display()
    );

    // The update schedule rides the same command: re-run {train → serve →
    // incremental update → serve} at this lane count against the golden
    // blessed by the canonical single-lane `replay --update` run. No
    // --bless here either — streaming knobs must reproduce, never define.
    let update_snapshot = hostprof::replay::run_update_replay(&opts, lanes)?;
    let update_path = hostprof::replay::update_golden_path(&golden_dir, seed);
    let contents = std::fs::read_to_string(&update_path).map_err(|e| {
        format!(
            "read golden {}: {e} (bless it via `hostprof replay --golden ... --update --bless`)",
            update_path.display()
        )
    })?;
    let expected = hostprof::replay::from_update_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_update_snapshots(&expected, &update_snapshot);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  {d}");
        }
        return Err(format!(
            "serve --golden seed {seed} lanes {lanes}: update schedule {} divergence(s) from {}",
            diffs.len(),
            update_path.display()
        ));
    }
    println!(
        "serve --golden seed {seed} lanes {lanes}: OK — update schedule (vocab {} → {}) \
         bit-identical to {}",
        update_snapshot.base_vocab,
        update_snapshot.grown_vocab,
        update_path.display()
    );

    // And the defense schedule: every §15 defense axis streamed through
    // the serving engine at this lane count must reproduce the golden
    // blessed by the canonical single-lane `replay --defense` run.
    let defense_snapshot = hostprof::replay::run_defense_replay(&opts, lanes)?;
    let defense_path = hostprof::replay::defense_golden_path(&golden_dir, seed);
    let contents = std::fs::read_to_string(&defense_path).map_err(|e| {
        format!(
            "read golden {}: {e} (bless it via `hostprof replay --golden ... --defense --bless`)",
            defense_path.display()
        )
    })?;
    let expected = hostprof::replay::from_defense_golden_json(&contents)?;
    let diffs = hostprof::replay::compare_defense_snapshots(&expected, &defense_snapshot);
    if diffs.is_empty() {
        println!(
            "serve --golden seed {seed} lanes {lanes}: OK — defense schedule ({} cases) \
             bit-identical to {}",
            defense_snapshot.cases.len(),
            defense_path.display()
        );
        Ok(())
    } else {
        for d in &diffs {
            eprintln!("  {d}");
        }
        Err(format!(
            "serve --golden seed {seed} lanes {lanes}: defense schedule {} divergence(s) from {}",
            diffs.len(),
            defense_path.display()
        ))
    }
}

/// Live mode: calibrated synthetic load through the serving loop, with a
/// latency/throughput summary at the end.
fn cmd_serve_live(args: &Args) -> Result<(), String> {
    args.expect_keys(&[
        "scale",
        "users",
        "pps",
        "duration",
        "lanes",
        "threads",
        "seed",
        "days",
        "update-every",
    ])?;
    let cfg = scenario_config(args)?;
    let run = hostprof::serving::LiveRunConfig {
        seed: args.get_parsed::<u64>("seed")?.unwrap_or(0x0005_e47e),
        target_pps: args.get_parsed::<f64>("pps")?.unwrap_or(500.0),
        duration_s: args.get_parsed::<u64>("duration")?.unwrap_or(1_800),
        lanes: args.get_parsed::<usize>("lanes")?.unwrap_or(2),
        threads: args.get_parsed::<usize>("threads")?.unwrap_or(1),
        update_every: args.get_parsed::<u64>("update-every")?,
    };
    let world = hostprof::synth::World::generate(&cfg.world);
    let population = hostprof::synth::Population::generate(&world, &cfg.population);
    eprintln!(
        "serving {} users over {} lanes at ~{:.0} pkt/s for {} simulated seconds",
        population.len(),
        run.lanes,
        run.target_pps,
        run.duration_s
    );
    let report = hostprof::serving::run_live(&world, &population, &cfg.pipeline, &run)?;
    let stats = report.stats;
    println!("packets ingested      : {}", stats.packets);
    println!("observations          : {}", stats.observations);
    println!(
        "report ticks          : {} fired, {} with profiles",
        stats.ticks,
        report.latencies_ms.len()
    );
    println!(
        "profiles              : {} emitted from {} sessions",
        stats.profiles_emitted, stats.sessions_profiled
    );
    println!(
        "report latency        : p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        report.latency_percentile_ms(0.50),
        report.latency_percentile_ms(0.95),
        report.latency_percentile_ms(0.99),
    );
    println!(
        "sustained ingest      : {:.0} pkt/s over {:.2}s wall",
        report.sustained_pps(),
        report.wall_seconds
    );
    println!(
        "late-dropped events   : {} (watermark bound)",
        report.late_dropped
    );
    if run.update_every.is_some() {
        println!(
            "online updates        : {} applied, vocab {} → {}",
            report.updates_applied, report.base_vocab, report.final_vocab
        );
        if let (Some(&max), Some(&p50)) = (
            report.publish_latencies_ms.last(),
            report
                .publish_latencies_ms
                .get(report.publish_latencies_ms.len() / 2),
        ) {
            println!(
                "version publish       : p50 {p50:.2} ms, max {max:.2} ms \
                 (off-thread; ingest never stalls)"
            );
        }
    }
    let st = report.observer;
    print_taxonomy(&st);
    if !report.taxonomy_invariant_ok() {
        return Err("merged lane taxonomy invariant violated".into());
    }
    Ok(())
}

/// Parse `lo:hi:step` (CLI units) into an inclusive sweep.
fn parse_sweep(spec: &str) -> Result<Vec<f64>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [lo, hi, step] = parts.as_slice() else {
        return Err(format!("invalid sweep '{spec}' (expected lo:hi:step)"));
    };
    let lo: f64 = lo
        .parse()
        .map_err(|_| format!("invalid sweep start '{lo}'"))?;
    let hi: f64 = hi
        .parse()
        .map_err(|_| format!("invalid sweep end '{hi}'"))?;
    let step: f64 = step
        .parse()
        .map_err(|_| format!("invalid sweep step '{step}'"))?;
    if step <= 0.0 || hi < lo {
        return Err(format!(
            "invalid sweep '{spec}' (need step > 0 and hi >= lo)"
        ));
    }
    let mut out = Vec::new();
    let mut x = lo;
    while x <= hi + 1e-9 {
        out.push(x.min(hi));
        x += step;
    }
    Ok(out)
}

/// Degradation curves: run one defense axis (or all six) through the
/// full pipeline at swept intensities and print the curve table.
fn cmd_defend(args: &Args) -> Result<(), String> {
    args.expect_keys(&[
        "scale", "days", "users", "defense", "sweep", "seed", "threads", "no-ctr",
    ])?;
    let cfg = scenario_config(args)?;
    let which = args.get("defense").unwrap_or("all");
    let names: Vec<&str> = if which == "all" {
        hostprof::defend::DEFENSE_NAMES.to_vec()
    } else if hostprof::defend::DEFENSE_NAMES.contains(&which) {
        vec![which]
    } else {
        return Err(format!(
            "unknown defense '{which}' (expected all or one of: {})",
            hostprof::defend::DEFENSE_NAMES.join(", ")
        ));
    };
    let sweep_override = args.get("sweep").map(parse_sweep).transpose()?;
    let seed = args.get_parsed::<u64>("seed")?.unwrap_or(0x00de_f5ed);
    let s = Scenario::generate(&cfg);
    let mut ev = hostprof::DefenseEvaluator::new(&s, seed);
    ev.with_ctr = !args.flag("no-ctr");
    if let Some(threads) = args.get_parsed::<usize>("threads")? {
        ev.profile_threads = threads;
    }
    for name in names {
        let sweep = match &sweep_override {
            Some(v) => v.clone(),
            None => hostprof::defend::default_sweep(name).expect("known defense"),
        };
        let curve = ev
            .eval_curve(name, &sweep)
            .ok_or_else(|| format!("defense '{name}' rejected its sweep"))?;
        println!("defense {name}:");
        println!(
            "  {:>10} {:>10} {:>8} {:>10} {:>9} {:>9} {:>9}",
            "intensity", "recovery%", "purity", "divergence", "accuracy", "ctr_gap", "sessions"
        );
        for p in &curve.points {
            println!(
                "  {:>10.2} {:>10.2} {:>8.3} {:>10.3} {:>9.3} {:>+9.4} {:>9}{}",
                p.intensity,
                p.recovery_pct,
                p.purity,
                p.divergence,
                p.mean_accuracy,
                p.ctr_gap * 100.0,
                p.sessions_profiled,
                match p.identity_bit_equal {
                    Some(true) => "  [identity: bit-equal]",
                    Some(false) => "  [identity: DIVERGED]",
                    None => "",
                }
            );
        }
        if curve
            .points
            .iter()
            .any(|p| p.identity_bit_equal == Some(false))
        {
            return Err(format!(
                "defense '{name}': identity point diverged from the undefended baseline"
            ));
        }
    }
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    args.expect_keys(&["scale", "days", "users"])?;
    let cfg = scenario_config(args)?;
    let s = Scenario::generate(&cfg);
    let result = CtrExperiment::new(
        &s.world,
        &s.population,
        &s.trace,
        &s.ads,
        ExperimentConfig {
            pipeline: cfg.pipeline.clone(),
            ..ExperimentConfig::default()
        },
    )
    .run();
    println!("impressions  : {}", result.impressions);
    println!(
        "replaced     : {} ({:.1}%)",
        result.replaced,
        result.replaced_fraction() * 100.0
    );
    println!("CTR eaves    : {:.3}%", result.eaves_ctr() * 100.0);
    println!("CTR original : {:.3}%", result.orig_ctr() * 100.0);
    let (a, b) = result.ctr_pairs();
    match paired_t_test(&a, &b) {
        Some(t) => println!("paired t-test: t = {:.3}, p = {:.4}", t.t, t.p),
        None => println!("paired t-test: undefined (too few clicks at this scale)"),
    }
    Ok(())
}

const USAGE: &str = "\
hostprof — user profiling by network observers (CoNEXT '21 reproduction)

USAGE:
  hostprof train      [--scale tiny|small|default] [--days N] [--threads N]
                      [--kernel auto|scalar|simd] --out model.json
  hostprof similar    --model model.json --host <hostname> [--top N]
  hostprof profile    [--scale S] --model model.json --user N [--day D]
                      [--index exact|ivf] [--nprobe N]
  hostprof observe    [--scale S] [--ech FRACTION] [--nat USERS_PER_IP] [--dns]
                      [--save capture.hpcap]
  hostprof replay     --capture capture.hpcap [--dns]
  hostprof replay     --golden tests/golden [--seed S] [--bless] [--threads N]
                      [--kernel auto|scalar|simd] [--sharding static|balanced]
                      [--update | --defense]
  hostprof defend     [--scale S] [--days N] [--users N] [--defense NAME|all]
                      [--sweep LO:HI:STEP] [--seed S] [--threads N] [--no-ctr]
  hostprof serve      [--scale S] [--users N] [--pps F] [--duration SIM_SECONDS]
                      [--lanes N] [--threads N] [--seed S] [--update-every TICKS]
  hostprof serve      --golden tests/golden [--seed S] [--lanes N] [--threads N]
  hostprof experiment [--scale S] [--days N] [--users N]
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "train" => cmd_train(&args),
        "similar" => cmd_similar(&args),
        "profile" => cmd_profile(&args),
        "observe" => cmd_observe(&args),
        "replay" => cmd_replay(&args),
        "defend" => cmd_defend(&args),
        "serve" => cmd_serve(&args),
        "experiment" => cmd_experiment(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
