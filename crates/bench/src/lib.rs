//! # hostprof-bench
//!
//! The benchmark harness: one binary per paper figure / in-text result
//! (see `DESIGN.md` §4 for the experiment index) plus Criterion
//! micro-benches for the performance-sensitive paths.
//!
//! Every binary:
//!
//! * honors `HOSTPROF_SCALE` = `tiny` | `small` | `default` (default:
//!   `small`) so the same code runs in seconds for smoke tests and at full
//!   scale for the recorded results;
//! * prints a human-readable report that mirrors what the paper's figure
//!   or table shows;
//! * writes machine-readable JSON to `results/<experiment>.json` so
//!   `EXPERIMENTS.md` numbers are regenerable.

pub mod chart;

use hostprof::scenario::ScenarioConfig;
use serde::Serialize;
use std::path::PathBuf;

/// Scale selected via the `HOSTPROF_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast smoke scale.
    Tiny,
    /// Minutes-fast evaluation scale (the recorded EXPERIMENTS.md runs).
    Small,
    /// The full laptop-scale model of the paper's deployment.
    Default,
    /// The million-user / 10⁵-vocabulary tier (DESIGN.md §13). Only
    /// reachable through the columnar streaming path — materializing this
    /// world as `Vec<Request>` is exactly what the tier exists to avoid.
    Large,
}

impl Scale {
    /// Read `HOSTPROF_SCALE`, defaulting to [`Scale::Small`].
    pub fn from_env() -> Self {
        match std::env::var("HOSTPROF_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("default") | Ok("full") => Scale::Default,
            Ok("large") => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// The scenario configuration for this scale.
    pub fn scenario(self) -> ScenarioConfig {
        match self {
            Scale::Tiny => ScenarioConfig::tiny(),
            Scale::Small => ScenarioConfig::small(),
            Scale::Default => ScenarioConfig::paper_month(),
            Scale::Large => ScenarioConfig::large(),
        }
    }

    /// Human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Large => "large",
        }
    }
}

/// Hardware threads available to this process.
pub fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// High-water mark of this process's resident set from the kernel's
/// accounting (`VmHWM`, kB); 0 where `/proc` is unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Write an experiment's JSON record to `results/<name>.json` (created
/// next to the workspace root; best effort — printing is the primary
/// output).
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// Fold a generation stamp into a result record. Carries the previous
/// file's append-only `generations` array forward and appends
/// `{seq, unix_time_s, headline}`, so regenerating a benchmark never
/// erases the record of earlier runs. Pure — `write_results_stamped`
/// supplies the file I/O and clock.
pub fn stamped_value<T: Serialize>(
    value: &T,
    prev_json: Option<&str>,
    headline: &str,
    unix_time_s: u64,
) -> serde_json::Value {
    use serde_json::Value;
    let mut v = serde_json::to_value(value);
    let mut generations: Vec<Value> = prev_json
        .and_then(|s| serde_json::from_str::<Value>(s).ok())
        .and_then(|old| {
            old.as_map().and_then(|m| {
                m.iter()
                    .find(|(k, _)| k == "generations")
                    .and_then(|(_, g)| g.as_seq().map(<[Value]>::to_vec))
            })
        })
        .unwrap_or_default();
    let seq = generations.len() as u64 + 1;
    // I64 matches what the parser produces for small integers, so a
    // stamp → write → read → stamp cycle compares equal.
    generations.push(Value::Map(vec![
        ("seq".into(), Value::I64(seq as i64)),
        ("unix_time_s".into(), Value::I64(unix_time_s as i64)),
        ("headline".into(), Value::Str(headline.into())),
    ]));
    if let Value::Map(map) = &mut v {
        map.retain(|(k, _)| k != "generations");
        map.push(("generations".into(), Value::Seq(generations)));
    }
    v
}

/// Write a generation-stamped record to an explicit path (the `--out`
/// escape hatch of the serving/large benches).
pub fn write_stamped_at<T: Serialize>(
    path: &std::path::Path,
    value: &T,
    headline: &str,
) -> std::io::Result<()> {
    let prev = std::fs::read_to_string(path).ok();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let v = stamped_value(value, prev.as_deref(), headline, now);
    let json = serde_json::to_string_pretty(&v).expect("serializable results");
    std::fs::write(path, json)
}

/// Like [`write_results`], but stamps the record with an append-only
/// `generations` provenance array (DESIGN.md §13).
pub fn write_results_stamped<T: Serialize>(name: &str, value: &T, headline: &str) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match write_stamped_at(&path, value, headline) {
        Ok(()) => println!("\n[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn results_dir() -> PathBuf {
    // The workspace root is two levels up from this crate at build time,
    // but binaries run from arbitrary cwd; prefer CARGO_MANIFEST_DIR's
    // grandparent and fall back to ./results.
    let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"));
    from_manifest.unwrap_or_else(|| PathBuf::from("results"))
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Print a `label: value` row with aligned columns.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // from_env reads the process env; just check the mapping logic via
        // scenario shapes.
        assert_eq!(Scale::Tiny.scenario().trace.days, 2);
        assert_eq!(Scale::Small.scenario().trace.days, 12);
        assert_eq!(Scale::Default.scenario().trace.days, 30);
    }

    #[test]
    fn results_dir_is_stable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[derive(Serialize)]
    struct Rec {
        metric: u32,
    }

    fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        v.as_map()
            .unwrap()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key}"))
    }

    #[test]
    fn stamping_a_fresh_record_starts_at_seq_one() {
        let v = stamped_value(&Rec { metric: 7 }, None, "first run", 1_000);
        assert_eq!(field(&v, "metric").as_u64(), Some(7));
        let gens = field(&v, "generations").as_seq().unwrap();
        assert_eq!(gens.len(), 1);
        assert_eq!(field(&gens[0], "seq").as_u64(), Some(1));
        assert_eq!(field(&gens[0], "unix_time_s").as_u64(), Some(1_000));
        assert_eq!(field(&gens[0], "headline").as_str(), Some("first run"));
    }

    #[test]
    fn restamping_appends_and_never_rewrites_history() {
        let first = stamped_value(&Rec { metric: 7 }, None, "first", 1_000);
        let prev = serde_json::to_string(&first).unwrap();
        let second = stamped_value(&Rec { metric: 9 }, Some(&prev), "second", 2_000);
        assert_eq!(field(&second, "metric").as_u64(), Some(9));
        let gens = field(&second, "generations").as_seq().unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(
            gens[0],
            field(&first, "generations").as_seq().unwrap()[0],
            "history must be kept"
        );
        assert_eq!(field(&gens[1], "seq").as_u64(), Some(2));
        assert_eq!(field(&gens[1], "headline").as_str(), Some("second"));
    }

    #[test]
    fn malformed_previous_files_reset_cleanly() {
        for prev in ["not json", "{\"generations\": 3}", "{}"] {
            let v = stamped_value(&Rec { metric: 1 }, Some(prev), "h", 5);
            assert_eq!(field(&v, "generations").as_seq().unwrap().len(), 1);
        }
    }
}
