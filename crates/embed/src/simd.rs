//! Runtime-dispatched SIMD kernels shared by the kNN scan and the
//! SKIPGRAM trainer.
//!
//! One process-wide feature probe (AVX2 + FMA on x86-64) selects between
//! the vector kernels and portable unrolled fallbacks; the choice is
//! constant for the life of the process, so every caller sees one
//! consistent floating-point summation order and repeated runs are
//! reproducible on the same machine.
//!
//! The training-side kernels are *fused* around the SGD sample shape
//! (word2vec's negative-sampling update): for each (center, target) pair
//! the trainer computes `f = h_c · h_o`, looks up `σ(f)`, and then applies
//! `neu1e += g·h_o; h_o += g·h_c` in a single pass over the rows
//! ([`fused_row_update`]) — both destination rows are loaded once and
//! written once, instead of the scalar path's two dependent sweeps.

/// Which inner-loop implementation the trainer runs. Resolved once per
/// training run from [`crate::config::KernelChoice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The reference scalar loop — strict sequential float order, the
    /// bit-determinism baseline the test-suite pins.
    Scalar,
    /// The fused kernels in this module (AVX2+FMA when the CPU has it,
    /// portable unrolled otherwise).
    Simd,
}

impl Kernel {
    /// Resolve a config choice to a concrete kernel.
    pub fn resolve(choice: crate::config::KernelChoice) -> Self {
        match choice {
            crate::config::KernelChoice::Scalar => Kernel::Scalar,
            crate::config::KernelChoice::Simd | crate::config::KernelChoice::Auto => Kernel::Simd,
        }
    }

    /// Whether this kernel runs the hand-vectorized AVX2+FMA path (false
    /// for [`Kernel::Scalar`] and for [`Kernel::Simd`] on the portable
    /// fallback).
    pub fn is_accelerated(self) -> bool {
        self == Kernel::Simd && simd_accelerated()
    }
}

/// Whether the process-wide dispatch selected the AVX2+FMA kernels.
pub fn simd_accelerated() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_fma_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_fma_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

/// Dot product: AVX2+FMA kernel when the CPU has it, the portable
/// unrolled version otherwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: the feature check above gates the target_feature fn.
        return unsafe { dot_avx2_fma(a, b) };
    }
    dot_portable(a, b)
}

/// `y += a · x`.
#[inline]
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: feature-gated as above.
        return unsafe { axpy_avx2_fma(y, a, x) };
    }
    axpy_portable(y, a, x);
}

/// `y += x` (the end-of-sample `h_c += neu1e` flush).
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    axpy(y, 1.0, x);
}

/// The fused negative-sampling row update: with `g` already computed from
/// the dot product and the sigmoid table,
///
/// ```text
/// neu1e += g · h_o      (gradient accumulated for the center row)
/// h_o   += g · h_c      (context row updated in place)
/// ```
///
/// Both updates read `h_o`'s *pre-update* value, exactly like the scalar
/// reference loop, and each row is loaded and stored once per sample.
#[inline]
pub fn fused_row_update(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: feature-gated as above.
        return unsafe { fused_row_update_avx2_fma(h_o, h_c, neu1e, g) };
    }
    fused_row_update_portable(h_o, h_c, neu1e, g);
}

/// One whole (center, context) training pair — the positive sample and
/// every negative, then the `h_c += neu1e` flush — behind a *single*
/// dispatch boundary. Each `samples` entry is a context-matrix row pointer
/// plus its label; for each one this computes `f = h_c·h_o`,
/// `g = (label − σ(f))·lr` and applies the fused row update (the first
/// sample *initializes* `neu1e`, so the buffer is never zeroed — see
/// [`fused_row_update_init`]).
///
/// Why a batched entry point: `#[target_feature]` kernels cannot inline
/// into their callers, so with per-primitive dispatch a pair with K
/// negatives pays 2(K+1)+1 real calls. Folding the whole pair into one
/// call drops that to 1 and keeps `h_c` pinned in registers/L1 across all
/// samples.
///
/// # Safety
/// `h_c` and every row pointer in `samples` must be valid for
/// `neu1e.len()` reads and writes for the duration of the call, and must
/// not overlap `neu1e`. Row pointers may repeat and may be raced by other
/// Hogwild workers (the trainer's accepted data race).
#[inline]
pub unsafe fn train_pair(
    h_c: *mut f32,
    samples: &[(*mut f32, f32)],
    neu1e: &mut [f32],
    lr: f32,
    sigmoid: &crate::sigmoid::SigmoidTable,
) {
    if samples.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: feature-gated as above; pointer contract forwarded.
        return train_pair_avx2_fma(h_c, samples, neu1e, lr, sigmoid);
    }
    train_pair_body(h_c, samples, neu1e, lr, sigmoid);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn train_pair_avx2_fma(
    h_c: *mut f32,
    samples: &[(*mut f32, f32)],
    neu1e: &mut [f32],
    lr: f32,
    sigmoid: &crate::sigmoid::SigmoidTable,
) {
    // The *_avx2_fma helpers share this function's target features, so the
    // compiler inlines them here: one real call per pair, not per sample.
    let dim = neu1e.len();
    let hc = std::slice::from_raw_parts_mut(h_c, dim);
    for (i, &(row, label)) in samples.iter().enumerate() {
        let h_o = std::slice::from_raw_parts_mut(row, dim);
        let f = dot_avx2_fma(hc, h_o);
        let g = (label - sigmoid.get(f)) * lr;
        if i == 0 {
            fused_row_update_init_avx2_fma(h_o, hc, neu1e, g);
        } else {
            fused_row_update_avx2_fma(h_o, hc, neu1e, g);
        }
    }
    axpy_avx2_fma(hc, 1.0, neu1e);
}

/// Portable [`train_pair`] body (also the non-x86 path).
#[inline]
unsafe fn train_pair_body(
    h_c: *mut f32,
    samples: &[(*mut f32, f32)],
    neu1e: &mut [f32],
    lr: f32,
    sigmoid: &crate::sigmoid::SigmoidTable,
) {
    let dim = neu1e.len();
    let hc = std::slice::from_raw_parts_mut(h_c, dim);
    for (i, &(row, label)) in samples.iter().enumerate() {
        let h_o = std::slice::from_raw_parts_mut(row, dim);
        let f = dot_portable(hc, h_o);
        let g = (label - sigmoid.get(f)) * lr;
        if i == 0 {
            fused_row_update_init_portable(h_o, hc, neu1e, g);
        } else {
            fused_row_update_portable(h_o, hc, neu1e, g);
        }
    }
    axpy_portable(hc, 1.0, neu1e);
}

/// [`fused_row_update`] for the *first* sample of a pair: writes
/// `neu1e = g · h_o` instead of accumulating, so the caller never has to
/// zero the buffer — one full store sweep and one load sweep saved per
/// (center, context) pair. `0 + g·h_o` and a direct `g·h_o` store round
/// identically, so this matches the accumulate-into-zeros path bit for
/// bit.
#[inline]
pub fn fused_row_update_init(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: feature-gated as above.
        return unsafe { fused_row_update_init_avx2_fma(h_o, h_c, neu1e, g) };
    }
    fused_row_update_init_portable(h_o, h_c, neu1e, g);
}

/// 8-lane FMA dot with four independent vector accumulators (32 floats in
/// flight), horizontal-summed in a fixed order; the scalar tail folds in
/// last. The default x86-64 target is SSE2-only, so this has to be an
/// explicit `target_feature` kernel rather than autovectorization.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2_fma(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            acc1,
        );
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            acc3,
        );
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let quad = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
    let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
    let single = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 0b01));
    let mut out = _mm_cvtss_f32(single);
    while i < n {
        out += a[i] * b[i];
        i += 1;
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2_fma(y: &mut [f32], a: f32, x: &[f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let py = y.as_mut_ptr();
    let px = x.as_ptr();
    let va = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let vy = _mm256_loadu_ps(py.add(i));
        let vx = _mm256_loadu_ps(px.add(i));
        _mm256_storeu_ps(py.add(i), _mm256_fmadd_ps(va, vx, vy));
        i += 8;
    }
    while i < n {
        y[i] += a * x[i];
        i += 1;
    }
}

/// One 8-lane pass: load `h_o` and `h_c` once, produce both the `neu1e`
/// accumulation and the in-place `h_o` update from the same registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fused_row_update_avx2_fma(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(h_o.len(), h_c.len());
    debug_assert_eq!(h_o.len(), neu1e.len());
    let n = h_o.len();
    let po = h_o.as_mut_ptr();
    let pc = h_c.as_ptr();
    let pe = neu1e.as_mut_ptr();
    let vg = _mm256_set1_ps(g);
    let mut i = 0;
    while i + 8 <= n {
        let vo = _mm256_loadu_ps(po.add(i));
        let vc = _mm256_loadu_ps(pc.add(i));
        let ve = _mm256_loadu_ps(pe.add(i));
        _mm256_storeu_ps(pe.add(i), _mm256_fmadd_ps(vg, vo, ve));
        _mm256_storeu_ps(po.add(i), _mm256_fmadd_ps(vg, vc, vo));
        i += 8;
    }
    while i < n {
        let o = h_o[i];
        neu1e[i] += g * o;
        h_o[i] = o + g * h_c[i];
        i += 1;
    }
}

/// [`fused_row_update_init`]'s AVX2 body: identical to the accumulating
/// kernel except `neu1e` is written with a plain multiply (no load).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fused_row_update_init_avx2_fma(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(h_o.len(), h_c.len());
    debug_assert_eq!(h_o.len(), neu1e.len());
    let n = h_o.len();
    let po = h_o.as_mut_ptr();
    let pc = h_c.as_ptr();
    let pe = neu1e.as_mut_ptr();
    let vg = _mm256_set1_ps(g);
    let mut i = 0;
    while i + 8 <= n {
        let vo = _mm256_loadu_ps(po.add(i));
        let vc = _mm256_loadu_ps(pc.add(i));
        _mm256_storeu_ps(pe.add(i), _mm256_mul_ps(vg, vo));
        _mm256_storeu_ps(po.add(i), _mm256_fmadd_ps(vg, vc, vo));
        i += 8;
    }
    while i < n {
        let o = h_o[i];
        neu1e[i] = g * o;
        h_o[i] = o + g * h_c[i];
        i += 1;
    }
}

/// Unrolled dot product with four independent accumulators, giving the
/// compiler room to vectorize while keeping a fixed, deterministic
/// floating-point summation order.
#[inline]
fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = 0f32;
    let mut acc1 = 0f32;
    let mut acc2 = 0f32;
    let mut acc3 = 0f32;
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let mut tail = 0f32;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    for (x, y) in chunks_a.zip(chunks_b) {
        acc0 += x[0] * y[0];
        acc1 += x[1] * y[1];
        acc2 += x[2] * y[2];
        acc3 += x[3] * y[3];
    }
    ((acc0 + acc1) + (acc2 + acc3)) + tail
}

#[inline]
fn axpy_portable(y: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let mut i = 0;
    while i + 4 <= n {
        y[i] += a * x[i];
        y[i + 1] += a * x[i + 1];
        y[i + 2] += a * x[i + 2];
        y[i + 3] += a * x[i + 3];
        i += 4;
    }
    while i < n {
        y[i] += a * x[i];
        i += 1;
    }
}

#[inline]
fn fused_row_update_portable(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    debug_assert_eq!(h_o.len(), h_c.len());
    debug_assert_eq!(h_o.len(), neu1e.len());
    for i in 0..h_o.len() {
        let o = h_o[i];
        neu1e[i] += g * o;
        h_o[i] = o + g * h_c[i];
    }
}

#[inline]
fn fused_row_update_init_portable(h_o: &mut [f32], h_c: &[f32], neu1e: &mut [f32], g: f32) {
    debug_assert_eq!(h_o.len(), h_c.len());
    debug_assert_eq!(h_o.len(), neu1e.len());
    for i in 0..h_o.len() {
        let o = h_o[i];
        neu1e[i] = g * o;
        h_o[i] = o + g * h_c[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.013).collect();
        let e: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() * 0.5).collect();
        (a, b, e)
    }

    #[test]
    fn dot_matches_naive_order_free_cases() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| 1.0 - i as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let fast = dot(&a, &b);
        assert!((naive - fast).abs() < 1e-4, "{naive} vs {fast}");
        // Exactly deterministic: same inputs, same bits.
        assert_eq!(fast.to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn dot_handles_all_tail_lengths() {
        for n in 0..70 {
            let (a, b, _) = vecs(n);
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            assert!((dot(&a, &b) as f64 - naive).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_reference() {
        for n in [0, 1, 7, 8, 9, 31, 32, 100] {
            let (x, y0, _) = vecs(n);
            let mut fast = y0.clone();
            axpy(&mut fast, 0.3, &x);
            let mut slow = y0.clone();
            for i in 0..n {
                slow[i] += 0.3 * x[i];
            }
            for i in 0..n {
                assert!((fast[i] - slow[i]).abs() < 1e-5, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn fused_row_update_matches_scalar_reference() {
        for n in [0, 1, 5, 8, 16, 17, 100] {
            let (c, o0, e0) = vecs(n);
            let g = -0.125f32;
            let mut o_fast = o0.clone();
            let mut e_fast = e0.clone();
            fused_row_update(&mut o_fast, &c, &mut e_fast, g);
            // Scalar reference: both updates read h_o's pre-update value.
            let mut o_slow = o0.clone();
            let mut e_slow = e0.clone();
            for i in 0..n {
                let o = o_slow[i];
                e_slow[i] += g * o;
                o_slow[i] = o + g * c[i];
            }
            for i in 0..n {
                assert!((o_fast[i] - o_slow[i]).abs() < 1e-5, "h_o n={n} i={i}");
                assert!((e_fast[i] - e_slow[i]).abs() < 1e-5, "neu1e n={n} i={i}");
            }
        }
    }

    #[test]
    fn fused_init_equals_accumulate_into_zeros() {
        for n in [0, 1, 5, 8, 16, 17, 100] {
            let (c, o0, _) = vecs(n);
            let g = 0.375f32;
            let mut o_init = o0.clone();
            let mut e_init = vec![f32::NAN; n]; // must be fully overwritten
            fused_row_update_init(&mut o_init, &c, &mut e_init, g);
            let mut o_acc = o0.clone();
            let mut e_acc = vec![0f32; n];
            fused_row_update(&mut o_acc, &c, &mut e_acc, g);
            for i in 0..n {
                assert_eq!(o_init[i].to_bits(), o_acc[i].to_bits(), "h_o n={n} i={i}");
                assert_eq!(e_init[i].to_bits(), e_acc[i].to_bits(), "neu1e n={n} i={i}");
            }
        }
    }

    #[test]
    fn kernel_resolution_honors_the_knob() {
        use crate::config::KernelChoice;
        assert_eq!(Kernel::resolve(KernelChoice::Scalar), Kernel::Scalar);
        assert_eq!(Kernel::resolve(KernelChoice::Simd), Kernel::Simd);
        assert_eq!(Kernel::resolve(KernelChoice::Auto), Kernel::Simd);
        assert!(!Kernel::Scalar.is_accelerated());
        assert_eq!(Kernel::Simd.is_accelerated(), simd_accelerated());
    }
}
