//! Deterministic fault injection for the ingest path.
//!
//! A production tap never sees the tidy streams the synthesizer emits: TCP
//! re-segments handshakes at arbitrary boundaries, captures truncate
//! mid-record, datagrams are duplicated, reordered and dropped, QUIC
//! coalesces packets into one datagram, and unrelated garbage shares the
//! link. This module mangles any packet stream with exactly those faults —
//! **deterministically**: the same [`ChaosConfig`] (seed included) over the
//! same input always produces the same mutated stream, so every failure is
//! replayable from its seed alone.
//!
//! Mutations come in two classes:
//!
//! * **observation-preserving** — TCP re-split (reassembly must recover the
//!   ClientHello), QUIC coalescing (trailing bytes after an Initial are
//!   legal), cross-flow interleaving and garbage-flow injection. Flows that
//!   receive only these stay in [`ChaosOutcome::clean_flows`]; the observer
//!   must recover **bit-identical observations** from them.
//! * **lossy** — truncation, bit-flips, drops, duplicates and intra-flow
//!   reordering. Affected flows land in [`ChaosOutcome::mutated_flows`];
//!   their observations may legitimately be lost or corrupted, but must
//!   never panic the observer or grow its memory without bound.
//!
//! The split is what makes the differential conformance harness
//! (`tests/chaos_observer.rs`, `chaosprobe`) possible: it checks the chaos
//! run against a clean run flow-by-flow instead of giving up on asserting
//! anything under fault injection.

use crate::flow::FlowKey;
use crate::packet::{Endpoint, Packet, Transport};
use crate::quic;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-flow segment ceiling chaos respects when re-splitting, chosen to
/// stay strictly under the observer's default
/// [`crate::observer::ObserverConfig::max_pending_segments`] budget so a
/// re-split (preserving) flow can always still reassemble.
const RESPLIT_SEGMENT_CEILING: usize = 7;

/// Source-IP range for injected garbage flows: 198.18.0.0/15, the RFC 2544
/// benchmarking range, which no synthesized client ever occupies — so
/// garbage can never collide with a real flow's 5-tuple.
const GARBAGE_BASE_IP: u32 = 0xC612_0000;

/// Seeded fault-injection parameters. All probabilities are per flow and
/// in `[0, 1]`; a flow can receive several mutations in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed for every random decision; equal seeds replay equal chaos.
    pub seed: u64,
    /// Probability a TCP flow's payloads are re-split at random boundaries
    /// into 2–4 segments each (observation-preserving).
    pub resplit_prob: f64,
    /// Probability a QUIC datagram gets trailing coalesced bytes appended
    /// (observation-preserving; reverted if it would change the parse).
    pub coalesce_prob: f64,
    /// Probability one packet of a flow has its payload truncated (lossy).
    pub truncate_prob: f64,
    /// Probability one packet of a flow has a random bit flipped, header
    /// bytes included (lossy).
    pub bitflip_prob: f64,
    /// Probability one packet of a flow is dropped entirely (lossy).
    pub drop_prob: f64,
    /// Probability one packet of a flow is duplicated (lossy: a duplicate
    /// mid-reassembly corrupts the buffer).
    pub duplicate_prob: f64,
    /// Probability a flow's packets are shuffled intra-flow (lossy).
    pub shuffle_prob: f64,
    /// Number of injected garbage flows (1–3 packets each, always counted
    /// as mutated) interleaved with the real traffic.
    pub garbage_flows: u32,
    /// Interleave flows randomly instead of replaying in timestamp order.
    /// Either way every flow's own packets keep their relative order
    /// (unless that flow was shuffled).
    pub interleave: bool,
}

impl ChaosConfig {
    /// A balanced mutation mix: roughly half the flows touched, the rest
    /// left clean so the differential properties have both populations.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            resplit_prob: 0.35,
            coalesce_prob: 0.30,
            truncate_prob: 0.12,
            bitflip_prob: 0.12,
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            shuffle_prob: 0.08,
            garbage_flows: 6,
            interleave: true,
        }
    }

    /// Every mutation cranked up plus a garbage flood — for memory-cap and
    /// no-panic stress, where nothing is expected to survive cleanly.
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            resplit_prob: 0.8,
            coalesce_prob: 0.6,
            truncate_prob: 0.5,
            bitflip_prob: 0.5,
            drop_prob: 0.35,
            duplicate_prob: 0.35,
            shuffle_prob: 0.3,
            garbage_flows: 64,
            interleave: true,
        }
    }

    /// No mutations at all (identity modulo replay order) — for harness
    /// self-checks.
    pub fn quiescent(seed: u64) -> Self {
        Self {
            seed,
            resplit_prob: 0.0,
            coalesce_prob: 0.0,
            truncate_prob: 0.0,
            bitflip_prob: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            shuffle_prob: 0.0,
            garbage_flows: 0,
            interleave: false,
        }
    }
}

/// Counts of the mutations actually applied in one [`apply`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Packets in the input stream.
    pub packets_in: u64,
    /// Packets in the mutated stream.
    pub packets_out: u64,
    /// Distinct flows in the input.
    pub flows_in: u64,
    /// Flows untouched by any lossy mutation.
    pub clean_flows: u64,
    /// Flows that received at least one lossy mutation.
    pub mutated_flows: u64,
    /// Garbage flows injected.
    pub garbage_flows: u64,
    /// TCP payloads re-split (count of extra segments created).
    pub resplits: u64,
    /// QUIC datagrams with coalesced trailing bytes.
    pub coalesced: u64,
    /// Payload truncations.
    pub truncations: u64,
    /// Bit flips.
    pub bitflips: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Packets duplicated.
    pub duplicates: u64,
    /// Flows shuffled intra-flow.
    pub shuffles: u64,
}

/// The mutated stream plus the bookkeeping the conformance harness needs.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The mutated packet stream.
    pub packets: Vec<Packet>,
    /// Flows whose observable behavior must be unchanged: the observer has
    /// to recover bit-identical observations from them.
    pub clean_flows: HashSet<FlowKey>,
    /// Flows that took a lossy mutation (injected garbage included):
    /// observations from these may be lost or corrupted.
    pub mutated_flows: HashSet<FlowKey>,
    /// What was done.
    pub stats: ChaosStats,
}

/// SplitMix64 stream — the crate's deterministic, dependency-free RNG.
#[derive(Debug, Clone)]
struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixpoint-ish start and decorrelate seeds.
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

/// Stable 64-bit identity of a flow key, for per-flow RNG seeding that does
/// not depend on processing order.
fn flow_seed(seed: u64, key: &FlowKey) -> u64 {
    let mut bytes = [0u8; 13];
    bytes[..4].copy_from_slice(&key.src.ip.to_be_bytes());
    bytes[4..6].copy_from_slice(&key.src.port.to_be_bytes());
    bytes[6..10].copy_from_slice(&key.dst.ip.to_be_bytes());
    bytes[10..12].copy_from_slice(&key.dst.port.to_be_bytes());
    bytes[12] = match key.transport {
        Transport::Tcp => 0,
        Transport::Udp => 1,
    };
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in &bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One flow's packets under mutation.
struct FlowLane {
    key: FlowKey,
    packets: Vec<Packet>,
    mutated: bool,
}

/// Apply seeded chaos to a packet stream.
///
/// Flows receiving only observation-preserving mutations land in
/// [`ChaosOutcome::clean_flows`]; everything else (including injected
/// garbage) lands in [`ChaosOutcome::mutated_flows`]. Equal configs over
/// equal inputs produce equal outcomes, byte for byte.
pub fn apply(cfg: &ChaosConfig, packets: &[Packet]) -> ChaosOutcome {
    let mut stats = ChaosStats {
        packets_in: packets.len() as u64,
        ..ChaosStats::default()
    };

    // Group into flows, preserving both intra-flow order and the order in
    // which flows first appear (so the pass is deterministic).
    let mut lanes: Vec<FlowLane> = Vec::new();
    let mut index: HashMap<FlowKey, usize> = HashMap::new();
    for pkt in packets {
        let key = FlowKey::of(pkt);
        let at = *index.entry(key).or_insert_with(|| {
            lanes.push(FlowLane {
                key,
                packets: Vec::new(),
                mutated: false,
            });
            lanes.len() - 1
        });
        lanes[at].packets.push(pkt.clone());
    }
    stats.flows_in = lanes.len() as u64;

    for lane in &mut lanes {
        let mut rng = ChaosRng::new(flow_seed(cfg.seed, &lane.key));
        mutate_flow(cfg, lane, &mut rng, &mut stats);
    }
    stats.clean_flows = lanes.iter().filter(|l| !l.mutated).count() as u64;
    stats.mutated_flows = lanes.iter().filter(|l| l.mutated).count() as u64;

    // Inject garbage flows on 5-tuples no real traffic can occupy.
    let (t_lo, t_hi) = packets.iter().fold((u64::MAX, 0u64), |(lo, hi), p| {
        (lo.min(p.t_ms), hi.max(p.t_ms))
    });
    let (t_lo, t_hi) = if t_lo > t_hi { (0, 0) } else { (t_lo, t_hi) };
    for g in 0..cfg.garbage_flows {
        let mut rng = ChaosRng::new(cfg.seed ^ (g as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f));
        lanes.push(garbage_lane(g, t_lo, t_hi, &mut rng));
        stats.garbage_flows += 1;
    }

    // Weave the lanes back into one stream.
    let mut out: Vec<Packet> = Vec::with_capacity(packets.len() + 8);
    if cfg.interleave {
        let mut rng = ChaosRng::new(cfg.seed ^ 0x0001_971e_4a11);
        let mut cursors: Vec<(usize, usize)> = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.packets.is_empty())
            .map(|(i, _)| (i, 0usize))
            .collect();
        while !cursors.is_empty() {
            let pick = rng.below(cursors.len());
            let (lane_idx, ref mut pos) = cursors[pick];
            out.push(lanes[lane_idx].packets[*pos].clone());
            *pos += 1;
            if *pos == lanes[lane_idx].packets.len() {
                cursors.swap_remove(pick);
            }
        }
    } else {
        for lane in &lanes {
            out.extend(lane.packets.iter().cloned());
        }
        out.sort_by_key(|p| p.t_ms);
    }
    stats.packets_out = out.len() as u64;

    let clean_flows = lanes.iter().filter(|l| !l.mutated).map(|l| l.key).collect();
    let mutated_flows = lanes.iter().filter(|l| l.mutated).map(|l| l.key).collect();
    ChaosOutcome {
        packets: out,
        clean_flows,
        mutated_flows,
        stats,
    }
}

/// Apply the configured mutations to one flow in place.
fn mutate_flow(cfg: &ChaosConfig, lane: &mut FlowLane, rng: &mut ChaosRng, stats: &mut ChaosStats) {
    // Preserving mutations first (they work on well-formed payloads).
    match lane.key.transport {
        Transport::Tcp => {
            if rng.chance(cfg.resplit_prob) {
                resplit_tcp(lane, rng, stats);
            }
        }
        Transport::Udp => {
            if lane.key.dst.port != 53 && rng.chance(cfg.coalesce_prob) {
                coalesce_quic(lane, rng, stats);
            }
        }
    }

    // Lossy mutations; any hit marks the flow mutated.
    if rng.chance(cfg.truncate_prob) && truncate_one(lane, rng) {
        stats.truncations += 1;
        lane.mutated = true;
    }
    if rng.chance(cfg.bitflip_prob) && bitflip_one(lane, rng) {
        stats.bitflips += 1;
        lane.mutated = true;
    }
    if rng.chance(cfg.drop_prob) && !lane.packets.is_empty() {
        let victim = rng.below(lane.packets.len());
        lane.packets.remove(victim);
        stats.drops += 1;
        lane.mutated = true;
    }
    if rng.chance(cfg.duplicate_prob) && !lane.packets.is_empty() {
        let victim = rng.below(lane.packets.len());
        let dup = lane.packets[victim].clone();
        lane.packets.insert(victim + 1, dup);
        stats.duplicates += 1;
        lane.mutated = true;
    }
    if rng.chance(cfg.shuffle_prob) && lane.packets.len() >= 2 {
        // Fisher–Yates with the flow's own stream.
        for i in (1..lane.packets.len()).rev() {
            let j = rng.below(i + 1);
            lane.packets.swap(i, j);
        }
        stats.shuffles += 1;
        lane.mutated = true;
    }
}

/// Re-split every sufficiently large TCP payload of the flow at random
/// interior boundaries, respecting the observer's segment budget so the
/// flow remains reassemblable (observation-preserving).
fn resplit_tcp(lane: &mut FlowLane, rng: &mut ChaosRng, stats: &mut ChaosStats) {
    let mut budget = RESPLIT_SEGMENT_CEILING.saturating_sub(lane.packets.len());
    if budget == 0 {
        return;
    }
    let mut out: Vec<Packet> = Vec::with_capacity(lane.packets.len() + budget);
    for pkt in lane.packets.drain(..) {
        let len = pkt.payload.len();
        if budget == 0 || len < 2 {
            out.push(pkt);
            continue;
        }
        // 1–3 extra cuts per payload, bounded by the remaining budget.
        let extra = 1 + rng.below(3.min(budget));
        let mut cuts: Vec<usize> = (0..extra).map(|_| 1 + rng.below(len - 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        budget -= cuts.len();
        stats.resplits += cuts.len() as u64;
        let mut prev = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&len)) {
            if cut > prev {
                out.push(Packet {
                    payload: pkt.payload.slice(prev..cut),
                    ..pkt.clone()
                });
                prev = cut;
            }
        }
    }
    lane.packets = out;
}

/// Append trailing bytes to QUIC datagrams — RFC 9000 coalescing, which an
/// Initial parser must skip. Reverted when it would change the parse (the
/// payload was not a well-formed Initial to begin with), so the mutation
/// stays observation-preserving on arbitrary input.
fn coalesce_quic(lane: &mut FlowLane, rng: &mut ChaosRng, stats: &mut ChaosStats) {
    for pkt in &mut lane.packets {
        if pkt.payload.is_empty() {
            continue;
        }
        let before = quic::extract_sni_from_quic(&pkt.payload);
        let mut grown = pkt.payload.to_vec();
        let tail = 1 + rng.below(200);
        for _ in 0..tail {
            grown.push(rng.next_u64() as u8);
        }
        if quic::extract_sni_from_quic(&grown) == before {
            pkt.payload = Bytes::from(grown);
            stats.coalesced += 1;
        }
    }
}

/// Truncate one random payload of the flow; returns whether anything
/// changed.
fn truncate_one(lane: &mut FlowLane, rng: &mut ChaosRng) -> bool {
    let candidates: Vec<usize> = lane
        .packets
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.payload.is_empty())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let victim = candidates[rng.below(candidates.len())];
    let keep = rng.below(lane.packets[victim].payload.len());
    let pkt = &mut lane.packets[victim];
    pkt.payload = pkt.payload.slice(0..keep);
    true
}

/// Flip one random bit in one random payload; returns whether anything
/// changed.
fn bitflip_one(lane: &mut FlowLane, rng: &mut ChaosRng) -> bool {
    let candidates: Vec<usize> = lane
        .packets
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.payload.is_empty())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let victim = candidates[rng.below(candidates.len())];
    let pkt = &mut lane.packets[victim];
    let mut bytes = pkt.payload.to_vec();
    let at = rng.below(bytes.len());
    bytes[at] ^= 1 << rng.below(8);
    pkt.payload = Bytes::from(bytes);
    true
}

/// Craft one garbage flow: 1–3 packets of adversarial bytes in several
/// flavors (pure noise, TLS-header-prefixed noise, truncated real
/// ClientHello, QUIC-long-header noise, empty).
fn garbage_lane(index: u32, t_lo: u64, t_hi: u64, rng: &mut ChaosRng) -> FlowLane {
    let src = Endpoint::new(
        GARBAGE_BASE_IP.wrapping_add(index),
        1024 + (index % 60_000) as u16,
    );
    let dst = Endpoint::new(0x5fee_d000 | (index & 0xfff), 443);
    let flavor = rng.below(5);
    let transport = if flavor == 3 {
        Transport::Udp
    } else {
        Transport::Tcp
    };
    let key_span = t_hi.saturating_sub(t_lo).max(1);
    let n = 1 + rng.below(3);
    let mut packets = Vec::with_capacity(n);
    for s in 0..n {
        let payload: Vec<u8> = match flavor {
            // Pure noise.
            0 => (0..1 + rng.below(300))
                .map(|_| rng.next_u64() as u8)
                .collect(),
            // A TLS handshake record header promising far more data than
            // will ever arrive — parks bytes in the reassembly buffer.
            1 => {
                let mut v = vec![22u8, 3, 1, 0x3f, 0xff, 1, 0x00, 0x3f, 0xf0];
                v.extend((0..rng.below(600)).map(|_| rng.next_u64() as u8));
                v
            }
            // A real ClientHello cut off mid-record: looks legitimate,
            // never completes.
            2 => {
                let full =
                    crate::tls::ClientHello::for_hostname(&format!("garbage-{index}.invalid"))
                        .encode();
                let keep = 1 + rng.below(full.len() - 1);
                full[..keep].to_vec()
            }
            // QUIC long-header noise.
            3 => {
                let mut v = vec![0b1100_0000u8, 0, 0, 0, 1];
                v.extend((0..rng.below(300)).map(|_| rng.next_u64() as u8));
                v
            }
            // Empty payloads (pure ACK-ish traffic).
            _ => Vec::new(),
        };
        packets.push(Packet {
            t_ms: t_lo + rng.next_u64() % key_span + s as u64,
            src,
            dst,
            transport,
            payload: Bytes::from(payload),
        });
    }
    FlowLane {
        key: FlowKey {
            src,
            dst,
            transport,
        },
        packets,
        mutated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::SniObserver;
    use crate::synthesize::{RequestEvent, TrafficSynthesizer};

    fn sample_stream() -> Vec<Packet> {
        let synth = TrafficSynthesizer::default();
        let events: Vec<RequestEvent> = (0..40u32)
            .map(|i| RequestEvent {
                t_ms: 1_000 + i as u64 * 250,
                client: i % 8,
                hostname: format!("host{}.example.com", i % 13),
            })
            .collect();
        synth.synthesize(&events)
    }

    #[test]
    fn same_seed_same_chaos() {
        let stream = sample_stream();
        let cfg = ChaosConfig::with_seed(42);
        let a = apply(&cfg, &stream);
        let b = apply(&cfg, &stream);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.clean_flows, b.clean_flows);
    }

    #[test]
    fn different_seeds_differ() {
        let stream = sample_stream();
        let a = apply(&ChaosConfig::with_seed(1), &stream);
        let b = apply(&ChaosConfig::with_seed(2), &stream);
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn quiescent_config_is_identity_modulo_time_order() {
        let stream = sample_stream();
        let out = apply(&ChaosConfig::quiescent(7), &stream);
        let mut expected = stream.clone();
        expected.sort_by_key(|p| p.t_ms);
        assert_eq!(out.packets, expected);
        assert_eq!(out.mutated_flows.len(), 0);
        assert_eq!(out.stats.clean_flows, out.stats.flows_in);
    }

    #[test]
    fn every_input_flow_is_classified_exactly_once() {
        let stream = sample_stream();
        let out = apply(&ChaosConfig::with_seed(99), &stream);
        let input_flows: HashSet<FlowKey> = stream.iter().map(FlowKey::of).collect();
        for key in &input_flows {
            let clean = out.clean_flows.contains(key);
            let mutated = out.mutated_flows.contains(key);
            assert!(clean ^ mutated, "flow classified exactly once");
        }
        assert!(
            out.clean_flows.iter().all(|k| input_flows.contains(k)),
            "clean set only holds real input flows"
        );
    }

    #[test]
    fn garbage_flows_use_the_reserved_range() {
        let stream = sample_stream();
        let cfg = ChaosConfig::with_seed(5);
        let out = apply(&cfg, &stream);
        let garbage: Vec<&Packet> = out
            .packets
            .iter()
            .filter(|p| p.src.ip & 0xfffe_0000 == GARBAGE_BASE_IP)
            .collect();
        assert!(!garbage.is_empty());
        for p in &garbage {
            assert!(out.mutated_flows.contains(&FlowKey::of(p)));
        }
    }

    #[test]
    fn clean_flow_packets_keep_intra_flow_order_and_bytes() {
        let stream = sample_stream();
        let out = apply(&ChaosConfig::with_seed(1234), &stream);
        for key in &out.clean_flows {
            let original: Vec<u8> = stream
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .flat_map(|p| p.payload.iter().copied())
                .collect();
            let mutated: Vec<u8> = out
                .packets
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .flat_map(|p| p.payload.iter().copied())
                .collect();
            match key.transport {
                // TCP re-split moves segment boundaries but never bytes.
                Transport::Tcp => assert_eq!(original, mutated, "flow {key:?}"),
                // QUIC coalescing appends trailing bytes; the original
                // datagram must remain a prefix.
                Transport::Udp => {
                    assert!(mutated.len() >= original.len());
                    assert_eq!(&mutated[..original.len()], &original[..], "flow {key:?}");
                }
            }
        }
    }

    #[test]
    fn observer_recovers_clean_flows_under_default_chaos() {
        let stream = sample_stream();
        let out = apply(&ChaosConfig::with_seed(2024), &stream);
        let mut chaotic = SniObserver::new();
        chaotic.process_stream(&out.packets);
        // Every clean flow's expected observation must survive verbatim.
        for key in &out.clean_flows {
            let flow_pkts: Vec<Packet> = stream
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .cloned()
                .collect();
            let mut solo = SniObserver::new();
            solo.process_stream(&flow_pkts);
            for want in solo.observations() {
                assert!(
                    chaotic.observations().contains(want),
                    "lost clean observation {want:?}"
                );
            }
        }
    }
}
