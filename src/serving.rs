//! Live serving-loop driver: calibrated synthetic load through the
//! [`ServeEngine`].
//!
//! `hostprof serve` (live mode) and the `loadgen` bench binary share this
//! driver so they measure the identical path: draw requests from the lazy
//! [`TraceStream`], lower them to wire packets, push every packet through
//! the sharded ingest → window → profile loop, and record per-tick compute
//! latency. The request rate is *calibrated*, not assumed — a warmup
//! segment of the stream measures requests per simulated second and
//! packets per request, and the per-user think time is scaled to hit the
//! target packet rate. The warmup doubles as the SKIPGRAM training corpus
//! so the engine profiles against a model of the same traffic it serves.

use hostprof_core::{Pipeline, PipelineConfig, ServeConfig, ServeEngine};
use hostprof_net::{ObserverStats, TrafficSynthesizer};
use hostprof_synth::{Population, StreamConfig, TraceStream, World};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Knobs of one live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveRunConfig {
    /// Stream seed (per-user generators derive from it).
    pub seed: u64,
    /// Target packets per *simulated* second.
    pub target_pps: f64,
    /// Simulated horizon, seconds.
    pub duration_s: u64,
    /// Ingest lanes.
    pub lanes: usize,
    /// Profiler worker threads.
    pub threads: usize,
}

/// What a live run measured.
#[derive(Debug, Clone)]
pub struct LiveRunReport {
    /// Calibrated per-user think time that hits the target rate.
    pub mean_gap_ms: u64,
    /// Measured wire packets per request during warmup.
    pub packets_per_request: f64,
    /// Engine counters.
    pub stats: hostprof_core::ServeStats,
    /// Observer counters merged across lanes.
    pub observer: ObserverStats,
    /// Events dropped beyond the lateness bound.
    pub late_dropped: u64,
    /// High-water mark of buffered windower events.
    pub peak_resident_events: usize,
    /// Distinct hostnames interned by the windower.
    pub interned_hosts: usize,
    /// Heap bytes held by the windower's interned hostname table.
    pub interned_table_bytes: usize,
    /// Per-report compute latency, milliseconds, ascending.
    pub latencies_ms: Vec<f64>,
    /// Wall-seconds inside `ingest_packet` + flush (tick compute runs
    /// inline on the ingest thread, so it is included).
    pub ingest_seconds: f64,
    /// Wall-seconds for the whole measured loop, generation included.
    pub wall_seconds: f64,
}

impl LiveRunReport {
    /// Sustained packets per wall-second through the engine.
    pub fn sustained_pps(&self) -> f64 {
        self.stats.packets as f64 / self.ingest_seconds.max(1e-9)
    }

    /// Latency percentile (nearest rank) in milliseconds; 0 when no
    /// report fired.
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() - 1) as f64 * q).round() as usize;
        self.latencies_ms[idx.min(self.latencies_ms.len() - 1)]
    }

    /// Whether the merged lane error taxonomy stayed exhaustive.
    pub fn taxonomy_invariant_ok(&self) -> bool {
        self.observer.parse_errors == self.observer.taxonomy_total()
    }
}

/// Run a calibrated live load through the full serving loop.
///
/// Deterministic in its simulated behavior per `(world, population,
/// config)`; only the wall-clock measurements vary run to run.
pub fn run_live(
    world: &World,
    population: &Population,
    pipeline_config: &PipelineConfig,
    run: &LiveRunConfig,
) -> Result<LiveRunReport, String> {
    if run.target_pps <= 0.0 || run.duration_s == 0 || run.lanes == 0 {
        return Err("target_pps, duration_s and lanes must be positive".into());
    }
    let synth = TrafficSynthesizer::default();

    // Warmup segment at a coarse gap: measures the request rate and the
    // packet multiplier, and collects per-user hostname sequences as the
    // training corpus.
    let gap0: u64 = 60_000;
    let warmup_requests = (population.len() * 60).max(4_000);
    let stream_cfg = StreamConfig {
        seed: run.seed,
        mean_gap_ms: gap0,
        ..StreamConfig::default()
    };
    let mut corpus_by_user: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut warmup_span_ms = 0u64;
    let mut warmup_packets = 0usize;
    for r in TraceStream::new(world, population, stream_cfg).take(warmup_requests) {
        warmup_span_ms = warmup_span_ms.max(r.t_ms);
        let hostname = world.hostname(r.host);
        warmup_packets += synth.packets_for_host(r.t_ms, r.user.0, hostname).len();
        corpus_by_user
            .entry(r.user.0)
            .or_default()
            .push(hostname.to_string());
    }
    let corpus: Vec<Vec<String>> = corpus_by_user.into_values().collect();
    let packets_per_request = warmup_packets as f64 / warmup_requests.max(1) as f64;
    let req_per_simsec = warmup_requests as f64 / (warmup_span_ms.max(1) as f64 / 1000.0);
    // Rate scales as 1/gap; clamp so pathological targets stay sane.
    let mean_gap_ms = ((gap0 as f64 * req_per_simsec * packets_per_request / run.target_pps)
        as u64)
        .clamp(2, 3_600_000);

    let pipeline = Pipeline::new(pipeline_config.clone(), world.blocklist().clone());
    let embeddings = pipeline.train_model(&corpus)?;
    let ontology = world.ontology();
    let profiler = pipeline.batch_profiler(&embeddings, ontology, run.threads.max(1));
    let mut engine = ServeEngine::new(
        ServeConfig {
            lanes: run.lanes,
            session_window_ms: pipeline.config().session_window_ms(),
            report_interval_ms: pipeline.config().report_interval_ms(),
            ..ServeConfig::default()
        },
        profiler,
        Some(pipeline.blocklist()),
    );

    // The measured loop: a fresh stream at the calibrated gap until the
    // simulated horizon.
    let duration_ms = run.duration_s * 1000;
    let run_cfg = StreamConfig {
        mean_gap_ms,
        ..stream_cfg
    };
    let wall_started = Instant::now();
    let mut ingest_time = Duration::ZERO;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for r in TraceStream::new(world, population, run_cfg) {
        if r.t_ms > duration_ms {
            break;
        }
        // Borrowed hostname straight from the world table — the measured
        // loop allocates nothing per request beyond the packets themselves.
        let packets = synth.packets_for_host(r.t_ms, r.user.0, world.hostname(r.host));
        for pkt in &packets {
            let t = Instant::now();
            let ticks = engine.ingest_packet(pkt);
            ingest_time += t.elapsed();
            for tick in ticks {
                latencies_ms.push(tick.compute_micros as f64 / 1000.0);
            }
        }
    }
    let t = Instant::now();
    for tick in engine.flush() {
        latencies_ms.push(tick.compute_micros as f64 / 1000.0);
    }
    ingest_time += t.elapsed();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));

    Ok(LiveRunReport {
        mean_gap_ms,
        packets_per_request,
        stats: engine.stats(),
        observer: engine.observer_stats(),
        late_dropped: engine.windower().late_dropped(),
        peak_resident_events: engine.windower().peak_resident_events(),
        interned_hosts: engine.windower().interned_hosts(),
        interned_table_bytes: engine.windower().interned_table_bytes(),
        latencies_ms,
        ingest_seconds: ingest_time.as_secs_f64(),
        wall_seconds: wall_started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_synth::{PopulationConfig, WorldConfig};

    #[test]
    fn live_run_profiles_users_and_keeps_the_taxonomy_invariant() {
        let world = World::generate(&WorldConfig::tiny());
        let population = Population::generate(
            &world,
            &PopulationConfig {
                num_users: 12,
                ..PopulationConfig::tiny()
            },
        );
        let cfg = crate::scenario::ScenarioConfig::tiny().pipeline;
        let report = run_live(
            &world,
            &population,
            &cfg,
            &LiveRunConfig {
                seed: 7,
                target_pps: 200.0,
                duration_s: 1_800,
                lanes: 2,
                threads: 1,
            },
        )
        .expect("live run");
        assert!(report.stats.packets > 0);
        assert!(report.stats.observations > 0);
        assert!(report.stats.ticks > 0, "no report tick fired");
        assert!(report.stats.profiles_emitted > 0, "nobody got profiled");
        assert!(report.taxonomy_invariant_ok());
        assert!(report.interned_hosts > 0, "windower interned no hostnames");
        assert!(report.interned_table_bytes > 0);
        assert!(!report.latencies_ms.is_empty());
        assert!(report.latency_percentile_ms(0.5) <= report.latency_percentile_ms(0.95));
        // The calibrated rate should land within 3x of the target — the
        // stream is stochastic, the calibration linear.
        let achieved = report.stats.packets as f64 / report.stats.ticks.max(1) as f64;
        assert!(achieved > 0.0);
    }

    #[test]
    fn rejects_degenerate_configs() {
        let world = World::generate(&WorldConfig::tiny());
        let population = Population::generate(&world, &PopulationConfig::tiny());
        let cfg = crate::scenario::ScenarioConfig::tiny().pipeline;
        for bad in [
            LiveRunConfig {
                seed: 1,
                target_pps: 0.0,
                duration_s: 10,
                lanes: 1,
                threads: 1,
            },
            LiveRunConfig {
                seed: 1,
                target_pps: 100.0,
                duration_s: 0,
                lanes: 1,
                threads: 1,
            },
            LiveRunConfig {
                seed: 1,
                target_pps: 100.0,
                duration_s: 10,
                lanes: 0,
                threads: 1,
            },
        ] {
            assert!(run_live(&world, &population, &cfg, &bad).is_err());
        }
    }
}
