//! Pluggable nearest-neighbor indexes over the prepared unit-norm matrix.
//!
//! The profiler's hot path is "top `N` cosine neighbors of a session
//! vector". [`ExactScan`] is the honest baseline: the tiled brute-force
//! kernel from [`crate::knn`], O(V·d) per query. [`IvfFlat`] is the
//! million-hostname answer: a k-means coarse quantizer partitions the
//! unit-norm rows into `nlists` inverted lists, and a query scans only the
//! `nprobe` lists whose centroids score highest — the classic IVF-flat
//! layout, reusing the same [`crate::simd::dot`] kernel and the same
//! packed-`u64` top-k selection as the exact path.
//!
//! Determinism rules (relied on by the golden-replay suite and the
//! differential oracle):
//!
//! * `ExactScan` *is* `tiled_scan` — byte-identical to the pre-index code.
//! * `IvfFlat` construction is a pure function of `(matrix, params)`:
//!   seeded splitmix64 initialization, Lloyd iterations with ties broken
//!   toward the lower centroid index, lists stored in ascending row order.
//! * Probe selection and candidate selection run on the packed-key total
//!   order, so equal scores break toward the lower list/row index and the
//!   scan order never changes results. With `nprobe == nlists` every
//!   non-zero row is scored exactly once by the same kernel as the exact
//!   scan, making exhaustive probing **bit-identical** to [`ExactScan`]
//!   (the property suite pins this).

use crate::embedding::EmbeddingSet;
use crate::knn::{self, KnnScratch};
use crate::simd;
use serde::{Deserialize, Serialize};

/// Which nearest-neighbor index the profiler queries. Serialized inside
/// `ProfilerConfig`; `Exact` is the default so existing configs and golden
/// replays are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum IndexConfig {
    /// Brute-force tiled scan — exact, the pre-index behaviour.
    #[default]
    Exact,
    /// IVF-flat approximate index.
    Ivf {
        /// Number of inverted lists (k-means centroids). 0 → auto:
        /// `√rows`, clamped to `[1, 4096]`.
        nlists: usize,
        /// Lists probed per query, clamped to `[1, nlists]`. Higher is
        /// slower and more accurate; `nprobe == nlists` is exhaustive and
        /// bit-identical to `Exact`.
        nprobe: usize,
        /// Seed for centroid initialization (k-means is deterministic
        /// given the matrix and this seed).
        seed: u64,
    },
}

impl IndexConfig {
    /// Default IVF parameters for a given vocabulary (auto `nlists`).
    pub fn ivf(nprobe: usize) -> Self {
        IndexConfig::Ivf {
            nlists: 0,
            nprobe,
            seed: DEFAULT_IVF_SEED,
        }
    }

    /// Short human label (`exact` / `ivf`).
    pub fn kind(&self) -> &'static str {
        match self {
            IndexConfig::Exact => "exact",
            IndexConfig::Ivf { .. } => "ivf",
        }
    }

    /// Build the configured index over `set`.
    pub fn build(&self, set: &EmbeddingSet) -> Box<dyn NnIndex> {
        match *self {
            IndexConfig::Exact => Box::new(ExactScan),
            IndexConfig::Ivf {
                nlists,
                nprobe,
                seed,
            } => Box::new(IvfFlat::build(
                set,
                IvfParams {
                    nlists,
                    nprobe,
                    seed,
                },
            )),
        }
    }
}

/// Seed used when the caller doesn't care (CLI default).
pub const DEFAULT_IVF_SEED: u64 = 0x1ff_5eed;

/// A nearest-neighbor search strategy over an [`EmbeddingSet`]'s prepared
/// unit-norm matrix. Implementations must be deterministic: the same
/// `(set, qhats, k)` always produces the same output, bit for bit.
pub trait NnIndex: Send + Sync {
    /// Short name for reports (`exact`, `ivf`).
    fn name(&self) -> &'static str;

    /// Top-`k` `(row, cosine)` per normalized query, best first, ties by
    /// ascending row index. `qhats` holds `q` unit-norm queries laid out
    /// contiguously (`q * set.dim()` floats). Zero-norm rows never match.
    fn search(
        &self,
        set: &EmbeddingSet,
        qhats: &[f32],
        k: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<Vec<(u32, f32)>>;
}

/// The exact tiled brute-force scan — the default index, byte-identical
/// to the pre-index hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactScan;

impl NnIndex for ExactScan {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn search(
        &self,
        set: &EmbeddingSet,
        qhats: &[f32],
        k: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<Vec<(u32, f32)>> {
        knn::tiled_scan(
            set.unit_rows(),
            set.row_norms(),
            set.dim(),
            qhats,
            k,
            &mut scratch.heaps,
        )
    }
}

/// Tuning knobs for [`IvfFlat::build`].
#[derive(Debug, Clone, Copy)]
pub struct IvfParams {
    /// Inverted-list count; 0 → `√rows` clamped to `[1, 4096]`.
    pub nlists: usize,
    /// Lists probed per query (clamped to `[1, nlists]` at build).
    pub nprobe: usize,
    /// Centroid-initialization seed.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlists: 0,
            nprobe: 8,
            seed: DEFAULT_IVF_SEED,
        }
    }
}

/// Lloyd iterations; fixed so builds are a pure function of (matrix, seed).
const KMEANS_ITERS: usize = 8;
/// k-means trains on at most this many rows (stride-sampled); the final
/// assignment pass still visits every row.
const KMEANS_TRAIN_CAP: usize = 131_072;

/// IVF-flat index: spherical k-means centroids over the non-zero unit-norm
/// rows, plus CSR inverted lists.
///
/// The lists store the unit-norm vectors themselves (`list_data`), not
/// just row ids: a probe then streams one contiguous slab per list
/// instead of gathering scattered matrix rows, which is where the "flat"
/// layout's speed actually comes from. The copies are bit-identical to
/// the matrix rows, so results are unaffected — the cost is one extra
/// copy of the non-zero rows held by the index.
pub struct IvfFlat {
    dim: usize,
    /// Total rows of the matrix this index was built for (validated at
    /// search time).
    rows: usize,
    nlists: usize,
    nprobe: usize,
    /// `nlists × dim` unit-norm centroids.
    centroids: Vec<f32>,
    /// CSR offsets into `list_rows` (and, `× dim`, into `list_data`);
    /// `nlists + 1` entries.
    list_offsets: Vec<u32>,
    /// Row ids grouped by list, ascending within each list.
    list_rows: Vec<u32>,
    /// Unit-norm rows copied in `list_rows` order, `dim` floats each.
    list_data: Vec<f32>,
}

/// splitmix64 — the same tiny seeded generator `net::chaos` uses.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl IvfFlat {
    /// Build over `set`'s unit-norm matrix. Degenerate inputs never fail:
    /// an empty (or all-zero) vocabulary produces an index that matches
    /// nothing, and `nlists` is clamped to the non-zero row count.
    pub fn build(set: &EmbeddingSet, params: IvfParams) -> Self {
        let dim = set.dim();
        let rows = set.len();
        let unit = set.unit_rows();
        let norms = set.row_norms();

        // Zero-norm rows can never match a query; keep them out of every
        // list so probed scans need no per-row norm check.
        let nonzero: Vec<u32> = (0..rows as u32)
            .filter(|&i| norms[i as usize] > f32::EPSILON)
            .collect();

        let auto = (nonzero.len() as f64).sqrt() as usize;
        let nlists = if params.nlists == 0 {
            auto.clamp(1, 4096)
        } else {
            params.nlists
        }
        .clamp(1, nonzero.len().max(1));
        let nprobe = params.nprobe.clamp(1, nlists);

        if nonzero.is_empty() {
            return Self {
                dim,
                rows,
                nlists,
                nprobe,
                centroids: vec![0.0; nlists * dim],
                list_offsets: vec![0; nlists + 1],
                list_rows: Vec::new(),
                list_data: Vec::new(),
            };
        }

        // --- Initialization: nlists distinct seeded picks. ---
        let mut rng = params.seed ^ 0x5eed_c01d_ca5c_ade1;
        let mut centroids = init_centroids(unit, dim, &nonzero, nlists, &mut rng);

        // --- Lloyd iterations on a stride sample (spherical k-means). ---
        let stride = nonzero.len().div_ceil(KMEANS_TRAIN_CAP).max(1);
        let train: Vec<u32> = nonzero.iter().copied().step_by(stride).collect();
        let mut sums = vec![0f32; nlists * dim];
        let mut counts = vec![0u32; nlists];
        for _ in 0..KMEANS_ITERS {
            sums.fill(0.0);
            counts.fill(0);
            for &row in &train {
                let v = &unit[row as usize * dim..(row as usize + 1) * dim];
                let list = nearest_centroid(&centroids, dim, v);
                counts[list] += 1;
                for (s, x) in sums[list * dim..(list + 1) * dim].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for list in 0..nlists {
                if counts[list] == 0 {
                    // Empty cluster: keep its previous centroid. Determinism
                    // beats cleverness here; stray centroids cost a probe of
                    // an empty list at worst.
                    continue;
                }
                let c = &mut centroids[list * dim..(list + 1) * dim];
                c.copy_from_slice(&sums[list * dim..(list + 1) * dim]);
                let n = simd::dot(c, c).sqrt();
                if n > f32::EPSILON {
                    for x in c.iter_mut() {
                        *x /= n;
                    }
                }
            }
        }

        // --- Final assignment of every non-zero row, CSR by counting. ---
        let mut assignment = vec![0u32; nonzero.len()];
        let mut list_len = vec![0u32; nlists];
        for (slot, &row) in nonzero.iter().enumerate() {
            let v = &unit[row as usize * dim..(row as usize + 1) * dim];
            let list = nearest_centroid(&centroids, dim, v) as u32;
            assignment[slot] = list;
            list_len[list as usize] += 1;
        }
        let mut list_offsets = vec![0u32; nlists + 1];
        for list in 0..nlists {
            list_offsets[list + 1] = list_offsets[list] + list_len[list];
        }
        let mut cursor = list_offsets.clone();
        let mut list_rows = vec![0u32; nonzero.len()];
        // `nonzero` ascends, so each list's rows come out ascending too.
        for (slot, &row) in nonzero.iter().enumerate() {
            let list = assignment[slot] as usize;
            list_rows[cursor[list] as usize] = row;
            cursor[list] += 1;
        }
        let mut list_data = Vec::with_capacity(list_rows.len() * dim);
        for &row in &list_rows {
            list_data.extend_from_slice(&unit[row as usize * dim..(row as usize + 1) * dim]);
        }

        Self {
            dim,
            rows,
            nlists,
            nprobe,
            centroids,
            list_offsets,
            list_rows,
            list_data,
        }
    }

    /// Inverted-list count actually used (after clamping).
    pub fn nlists(&self) -> usize {
        self.nlists
    }

    /// Lists probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Indexed (non-zero) row count.
    pub fn indexed_rows(&self) -> usize {
        self.list_rows.len()
    }

    /// Clone of this index probing `nprobe` lists instead — lists and
    /// centroids are shared work, so sweeps reuse one build.
    pub fn with_nprobe(&self, nprobe: usize) -> Self {
        Self {
            dim: self.dim,
            rows: self.rows,
            nlists: self.nlists,
            nprobe: nprobe.clamp(1, self.nlists),
            centroids: self.centroids.clone(),
            list_offsets: self.list_offsets.clone(),
            list_rows: self.list_rows.clone(),
            list_data: self.list_data.clone(),
        }
    }
}

/// Seeded distinct-row centroid initialization (rows copied verbatim).
fn init_centroids(
    unit: &[f32],
    dim: usize,
    nonzero: &[u32],
    nlists: usize,
    rng: &mut u64,
) -> Vec<f32> {
    let mut picked = vec![false; nonzero.len()];
    let mut centroids = Vec::with_capacity(nlists * dim);
    let mut taken = 0usize;
    while taken < nlists {
        let slot = (splitmix64(rng) % nonzero.len() as u64) as usize;
        // Rejection loop terminates: nlists ≤ nonzero.len().
        if picked[slot] {
            continue;
        }
        picked[slot] = true;
        let row = nonzero[slot] as usize;
        centroids.extend_from_slice(&unit[row * dim..(row + 1) * dim]);
        taken += 1;
    }
    centroids
}

/// Index of the centroid with the largest dot product against `v`; exact
/// ties break toward the lower index (strict `>` keeps the first max).
fn nearest_centroid(centroids: &[f32], dim: usize, v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (list, c) in centroids.chunks_exact(dim).enumerate() {
        let score = simd::dot(c, v);
        if score > best_score {
            best_score = score;
            best = list;
        }
    }
    best
}

impl NnIndex for IvfFlat {
    fn name(&self) -> &'static str {
        "ivf"
    }

    fn search(
        &self,
        set: &EmbeddingSet,
        qhats: &[f32],
        k: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<Vec<(u32, f32)>> {
        assert_eq!(self.dim, set.dim(), "index built for a different dim");
        assert_eq!(self.rows, set.len(), "index built for a different matrix");
        let dim = self.dim;
        let q = qhats.len().checked_div(dim).unwrap_or(0);
        while scratch.heaps.len() < q {
            scratch.heaps.push(knn::TopK::new());
        }
        let mut out = Vec::with_capacity(q);
        for qi in 0..q {
            let qhat = &qhats[qi * dim..(qi + 1) * dim];

            // Rank lists by centroid score on the packed-key total order:
            // ties toward the lower list index, never a float compare.
            scratch.probe_keys.clear();
            for (list, c) in self.centroids.chunks_exact(dim).enumerate() {
                scratch
                    .probe_keys
                    .push(knn::pack(simd::dot(c, qhat), list as u32));
            }
            let nprobe = self.nprobe.min(scratch.probe_keys.len());
            if nprobe < scratch.probe_keys.len() {
                scratch
                    .probe_keys
                    .select_nth_unstable_by(nprobe - 1, |a, b| b.cmp(a));
                scratch.probe_keys.truncate(nprobe);
            }
            // Probe in ascending list order (cache-friendlier CSR walk;
            // result-invariant either way).
            scratch
                .probe_keys
                .sort_unstable_by_key(|&key| !(key as u32));

            let candidates: usize = scratch
                .probe_keys
                .iter()
                .map(|&key| {
                    let list = knn::pack_index(key) as usize;
                    (self.list_offsets[list + 1] - self.list_offsets[list]) as usize
                })
                .sum();
            let heap = &mut scratch.heaps[qi];
            heap.reset(k, candidates);
            for &key in &scratch.probe_keys {
                let list = knn::pack_index(key) as usize;
                let lo = self.list_offsets[list] as usize;
                let hi = self.list_offsets[list + 1] as usize;
                // Stream the list's contiguous slab; ids ride alongside.
                let slab = self.list_data[lo * dim..hi * dim].chunks_exact(dim);
                for (&row, v) in self.list_rows[lo..hi].iter().zip(slab) {
                    heap.consider(row, simd::dot(qhat, v));
                }
            }
            out.push(heap.take_sorted());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    /// Deterministic pseudo-random embedding set: `clusters` directions,
    /// rows jittered around them.
    fn clustered_set(rows: usize, dim: usize, clusters: usize, seed: u64) -> EmbeddingSet {
        let mut rng = seed;
        let mut centers = Vec::with_capacity(clusters * dim);
        for _ in 0..clusters * dim {
            centers.push((splitmix64(&mut rng) as f32 / u64::MAX as f32) - 0.5);
        }
        let mut vectors = Vec::with_capacity(rows * dim);
        for r in 0..rows {
            let c = r % clusters;
            for d in 0..dim {
                let noise = ((splitmix64(&mut rng) as f32 / u64::MAX as f32) - 0.5) * 0.1;
                vectors.push(centers[c * dim + d] + noise);
            }
        }
        let names: Vec<Vec<String>> = vec![(0..rows).map(|i| format!("h{i}.com")).collect()];
        let vocab = Vocab::build(names.iter().map(|s| s.iter().map(String::as_str)), 1, 0.0);
        EmbeddingSet::new(dim, vocab, vectors)
    }

    #[test]
    fn exhaustive_probe_is_bit_identical_to_exact() {
        let set = clustered_set(300, 8, 7, 42);
        let ivf = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 9,
                nprobe: 9,
                seed: 7,
            },
        );
        let mut s1 = KnnScratch::new();
        let mut s2 = KnnScratch::new();
        let query = vec![0.3f32; 8];
        for k in [1usize, 10, 299, 300, 400] {
            let exact = set.nearest_to_vector_with(&query, k, &mut s1);
            let approx = set.nearest_to_vector_with_index(&query, k, &ivf, &mut s2);
            assert_eq!(exact.len(), approx.len(), "k={k}");
            for (e, a) in exact.iter().zip(&approx) {
                assert_eq!(e.0, a.0, "k={k}");
                assert_eq!(e.1.to_bits(), a.1.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn partial_probe_returns_a_subset_with_exact_sims() {
        let set = clustered_set(400, 6, 10, 3);
        let ivf = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 16,
                nprobe: 2,
                seed: 3,
            },
        );
        let mut scratch = KnnScratch::new();
        let query = vec![0.9f32, -0.1, 0.2, 0.0, 0.4, -0.3];
        let full = set.nearest_to_vector_with(&query, 400, &mut scratch);
        let by_row: std::collections::HashMap<u32, u32> =
            full.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        let approx = set.nearest_to_vector_with_index(&query, 25, &ivf, &mut scratch);
        assert!(!approx.is_empty());
        for w in approx.windows(2) {
            assert!(
                knn::pack(w[0].1, w[0].0) > knn::pack(w[1].1, w[1].0),
                "descending with index tie-break"
            );
        }
        for &(idx, sim) in &approx {
            assert_eq!(
                by_row[&idx],
                sim.to_bits(),
                "IVF sims are the exact kernel's bits"
            );
        }
    }

    #[test]
    fn zero_rows_are_never_indexed_and_empty_sets_build() {
        let names = [vec!["a.com".to_string(), "z.com".to_string()]];
        let vocab = Vocab::build(names.iter().map(|s| s.iter().map(String::as_str)), 1, 0.0);
        let vectors = vec![1.0f32, 0.5, 0.0, 0.0]; // z.com is the zero row
        let set = EmbeddingSet::new(2, vocab, vectors);
        let ivf = IvfFlat::build(&set, IvfParams::default());
        assert_eq!(ivf.indexed_rows(), 1);
        let mut scratch = KnnScratch::new();
        let got = set.nearest_to_vector_with_index(&[1.0, 0.0], 10, &ivf, &mut scratch);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, set.vocab().get("a.com").unwrap());
    }

    #[test]
    fn nlists_clamps_and_auto_sizes() {
        let set = clustered_set(100, 4, 5, 9);
        let auto = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 0,
                nprobe: 3,
                seed: 1,
            },
        );
        assert_eq!(auto.nlists(), 10, "√100");
        let over = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 1000,
                nprobe: 4000,
                seed: 1,
            },
        );
        assert_eq!(over.nlists(), 100, "clamped to non-zero rows");
        assert_eq!(over.nprobe(), 100);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let set = clustered_set(200, 5, 6, 11);
        let a = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 8,
                nprobe: 2,
                seed: 5,
            },
        );
        let b = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 8,
                nprobe: 2,
                seed: 5,
            },
        );
        assert_eq!(a.list_rows, b.list_rows);
        assert_eq!(a.list_offsets, b.list_offsets);
        assert_eq!(
            a.centroids.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.centroids.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn with_nprobe_shares_the_partition() {
        let set = clustered_set(200, 5, 6, 11);
        let base = IvfFlat::build(
            &set,
            IvfParams {
                nlists: 8,
                nprobe: 1,
                seed: 5,
            },
        );
        let widened = base.with_nprobe(8);
        assert_eq!(widened.nprobe(), 8);
        assert_eq!(base.list_rows, widened.list_rows);
        let mut s1 = KnnScratch::new();
        let exact = set.nearest_to_vector_with(&[0.1, 0.2, 0.3, 0.4, 0.5], 9, &mut s1);
        let exh =
            set.nearest_to_vector_with_index(&[0.1, 0.2, 0.3, 0.4, 0.5], 9, &widened, &mut s1);
        assert_eq!(exact, exh);
    }

    #[test]
    fn index_config_builds_and_labels() {
        let set = clustered_set(50, 4, 3, 2);
        let exact = IndexConfig::Exact.build(&set);
        assert_eq!(exact.name(), "exact");
        let ivf = IndexConfig::ivf(4).build(&set);
        assert_eq!(ivf.name(), "ivf");
        assert_eq!(IndexConfig::default(), IndexConfig::Exact);
        assert_eq!(IndexConfig::ivf(4).kind(), "ivf");
        assert_eq!(IndexConfig::Exact.kind(), "exact");
    }
}
