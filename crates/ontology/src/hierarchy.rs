//! The deterministic, Adwords-like category hierarchy.
//!
//! The paper (Section 5.4) reports that Google Adwords returned **1397**
//! categories organized in a hierarchy whose depth varies per branch (e.g.
//! *Internet & Telecom* has only two subcategories while *Computers &
//! Electronics* has 123 spread over five levels). Harmonizing to the first
//! two levels leaves **328** categories; Figure 6 plots the **34** top-level
//! topics.
//!
//! We reproduce those shape constants exactly: 34 top-level topics, 328
//! harmonized (level ≤ 2) categories, 1397 hierarchy nodes in total. The
//! harmonized [`CategoryId`] space is laid out as:
//!
//! * ids `0 .. 34`  — the top-level categories themselves;
//! * ids `34 .. 328` — second-level categories, grouped contiguously by
//!   parent topic.

use crate::category::{CategoryId, TopCategoryId};
use crate::vector::CategoryVector;

/// Number of top-level topics (Figure 6 of the paper).
pub const TOP_CATEGORIES: usize = 34;
/// Number of harmonized level-≤2 categories (the set `C` of Section 4.1).
pub const HARMONIZED_CATEGORIES: usize = 328;
/// Total number of nodes in the full (unharmonized) hierarchy.
pub const TOTAL_HIERARCHY_NODES: usize = 1397;

/// Top-level topic names (taken from Figure 6) and the number of
/// second-level children of each. Child counts sum to
/// `HARMONIZED_CATEGORIES - TOP_CATEGORIES = 294`.
///
/// Two anecdotes from the paper are honored: *Internet & Telecom* has just 2
/// subcategories, and *Computers & Electronics* is the bushiest branch.
const TOP_TOPICS: [(&str, u16); TOP_CATEGORIES] = [
    ("Online Communities", 8),
    ("Arts & Entertainment", 22),
    ("People & Society", 14),
    ("Jobs & Education", 10),
    ("Games", 12),
    ("Internet & Telecom", 2),
    ("Computers & Electronics", 24),
    ("Shopping", 18),
    ("News", 9),
    ("Business & Industrial", 16),
    ("Reference", 7),
    ("Books & Literature", 8),
    ("Sports", 15),
    ("Travel", 13),
    ("Finance", 12),
    ("Health", 14),
    ("Real Estate", 6),
    ("Beauty & Fitness", 9),
    ("Autos & Vehicles", 10),
    ("Science", 9),
    ("Hobbies & Leisure", 12),
    ("Food & Drink", 10),
    ("Law & Government", 8),
    ("Pets & Animals", 6),
    ("Home & Garden", 8),
    ("Sororities & Student Societies", 1),
    ("Crime & Mystery Films", 1),
    ("Awards & Prizes", 1),
    ("Reviews & Comparisons", 2),
    ("DIY & Expert Content", 2),
    ("Jellies & Preserves", 1),
    ("Cooktops & Ovens", 1),
    ("Clubs & Nightlife", 2),
    ("Copiers & Fax", 1),
];

/// Readable qualifiers used to mint second-level category names.
const SUBTOPIC_WORDS: [&str; 25] = [
    "General",
    "News & Media",
    "Communities",
    "Equipment",
    "Services",
    "Education",
    "Events",
    "Reviews",
    "Accessories",
    "Industry",
    "Culture",
    "Technology",
    "Marketplace",
    "Local",
    "International",
    "Beginners",
    "Professional",
    "Vintage",
    "Outdoor",
    "Indoor",
    "Digital",
    "Luxury",
    "Budget",
    "Kids",
    "Seasonal",
];

/// The harmonized two-level category hierarchy.
///
/// Construction is fully deterministic — every call to
/// [`Hierarchy::adwords_like`] yields the same hierarchy, which keeps every
/// experiment reproducible without shipping a data file.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// `category_parent[i]` = top-level topic of harmonized category `i`.
    category_parent: Vec<TopCategoryId>,
    /// Harmonized category names, indexed by [`CategoryId`].
    category_names: Vec<String>,
    /// Level-2 children of each top-level topic (excluding the topic's own
    /// harmonized id).
    children: Vec<Vec<CategoryId>>,
    /// Number of unharmonized (level ≥ 3) descendants below each harmonized
    /// category. Only used for hierarchy statistics.
    deep_nodes: Vec<u16>,
}

impl Hierarchy {
    /// Build the deterministic Adwords-like hierarchy described in the
    /// module docs.
    pub fn adwords_like() -> Self {
        let mut category_parent = Vec::with_capacity(HARMONIZED_CATEGORIES);
        let mut category_names = Vec::with_capacity(HARMONIZED_CATEGORIES);
        let mut children: Vec<Vec<CategoryId>> = vec![Vec::new(); TOP_CATEGORIES];

        // ids 0..34: the top-level categories themselves.
        for (t, (name, _)) in TOP_TOPICS.iter().enumerate() {
            category_parent.push(TopCategoryId(t as u8));
            category_names.push((*name).to_string());
        }
        // ids 34..328: second-level categories, contiguous per topic.
        for (t, (name, n_children)) in TOP_TOPICS.iter().enumerate() {
            for k in 0..*n_children {
                let id = CategoryId(category_parent.len() as u16);
                category_parent.push(TopCategoryId(t as u8));
                let word = SUBTOPIC_WORDS[(k as usize) % SUBTOPIC_WORDS.len()];
                let name = if (k as usize) < SUBTOPIC_WORDS.len() {
                    format!("{name} / {word}")
                } else {
                    format!("{name} / {word} {}", k as usize / SUBTOPIC_WORDS.len() + 1)
                };
                category_names.push(name);
                children[t].push(id);
            }
        }
        debug_assert_eq!(category_parent.len(), HARMONIZED_CATEGORIES);

        // Distribute the remaining (level ≥ 3) hierarchy nodes below the
        // second-level categories with a deterministic pattern. Bushy
        // branches (many level-2 children) also get deeper subtrees, echoing
        // the paper's Computers & Electronics anecdote.
        let second_level = HARMONIZED_CATEGORIES - TOP_CATEGORIES;
        let deeper_total = TOTAL_HIERARCHY_NODES - HARMONIZED_CATEGORIES;
        let mut deep_nodes = vec![0u16; HARMONIZED_CATEGORIES];
        // Provisional weights: some pseudo-variety per category plus a term
        // proportional to the parent's bushiness, so bushy branches (e.g.
        // Computers & Electronics) also get deeper subtrees.
        let mut weights = vec![0usize; second_level];
        let mut weight_sum = 0usize;
        for (j, w) in weights.iter_mut().enumerate() {
            let id = TOP_CATEGORIES + j;
            let parent = category_parent[id].index();
            let bushiness = TOP_TOPICS[parent].1 as usize;
            *w = 1 + (j * 7 + parent * 3) % 5 + bushiness / 4;
            weight_sum += *w;
        }
        // Exact largest-remainder allocation of `deeper_total` nodes.
        let mut assigned = 0usize;
        for (j, &w) in weights.iter().enumerate() {
            let share = w * deeper_total / weight_sum;
            deep_nodes[TOP_CATEGORIES + j] = share as u16;
            assigned += share;
        }
        let mut leftover = deeper_total - assigned;
        let mut j = 0;
        while leftover > 0 {
            deep_nodes[TOP_CATEGORIES + j % second_level] += 1;
            leftover -= 1;
            j += 1;
        }

        Self {
            category_parent,
            category_names,
            children,
            deep_nodes,
        }
    }

    /// Number of harmonized categories (`|C|` = 328).
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.category_parent.len()
    }

    /// Number of top-level topics (34).
    #[inline]
    pub fn num_top(&self) -> usize {
        self.children.len()
    }

    /// Total nodes in the full hierarchy (1397), harmonized or not.
    pub fn total_nodes(&self) -> usize {
        self.num_categories() + self.deep_nodes.iter().map(|&d| d as usize).sum::<usize>()
    }

    /// The top-level topic a harmonized category belongs to.
    #[inline]
    pub fn top_of(&self, c: CategoryId) -> TopCategoryId {
        self.category_parent[c.index()]
    }

    /// The harmonized id of a top-level topic itself (ids `0..34`).
    #[inline]
    pub fn top_level_category(&self, t: TopCategoryId) -> CategoryId {
        CategoryId(t.0 as u16)
    }

    /// Second-level children of a top-level topic.
    #[inline]
    pub fn children_of_top(&self, t: TopCategoryId) -> &[CategoryId] {
        &self.children[t.index()]
    }

    /// Name of a harmonized category.
    #[inline]
    pub fn category_name(&self, c: CategoryId) -> &str {
        &self.category_names[c.index()]
    }

    /// Name of a top-level topic.
    #[inline]
    pub fn top_name(&self, t: TopCategoryId) -> &str {
        &self.category_names[t.index()]
    }

    /// Number of unharmonized (level ≥ 3) descendants of a category.
    #[inline]
    pub fn deep_nodes_under(&self, c: CategoryId) -> usize {
        self.deep_nodes[c.index()] as usize
    }

    /// All top-level topic ids.
    pub fn top_ids(&self) -> impl Iterator<Item = TopCategoryId> + '_ {
        (0..self.num_top()).map(|t| TopCategoryId(t as u8))
    }

    /// All harmonized category ids.
    pub fn category_ids(&self) -> impl Iterator<Item = CategoryId> + '_ {
        (0..self.num_categories()).map(|c| CategoryId(c as u16))
    }

    /// Look up a harmonized category by its exact display name
    /// (e.g. `"Travel"` or `"Travel / Services"`). Linear scan — the
    /// hierarchy has 328 entries and this is a tooling path, not a hot one.
    pub fn find_category(&self, name: &str) -> Option<CategoryId> {
        self.category_names
            .iter()
            .position(|n| n == name)
            .map(|i| CategoryId(i as u16))
    }

    /// Look up a top-level topic by name.
    pub fn find_top(&self, name: &str) -> Option<TopCategoryId> {
        self.top_ids().find(|t| self.top_name(*t) == name)
    }

    /// Project a harmonized category vector onto the 34 top-level topics by
    /// summing the weight mass per topic. Used for the Figure 6 timelines.
    pub fn project_to_top(&self, v: &CategoryVector) -> Vec<f32> {
        let mut out = vec![0.0f32; self.num_top()];
        for (c, w) in v.iter() {
            out[self.top_of(c).index()] += w;
        }
        out
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::adwords_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_constants_match_the_paper() {
        let h = Hierarchy::adwords_like();
        assert_eq!(h.num_top(), 34, "Figure 6 plots 34 top-level topics");
        assert_eq!(h.num_categories(), 328, "Section 5.4: 328 categories");
        assert_eq!(h.total_nodes(), 1397, "Section 5.4: 1397 categories");
    }

    #[test]
    fn child_counts_sum_to_the_harmonized_size() {
        let total: usize = TOP_TOPICS.iter().map(|(_, c)| *c as usize).sum();
        assert_eq!(total, HARMONIZED_CATEGORIES - TOP_CATEGORIES);
    }

    #[test]
    fn internet_and_telecom_has_two_subcategories() {
        let h = Hierarchy::adwords_like();
        let telecom = h
            .top_ids()
            .find(|t| h.top_name(*t) == "Internet & Telecom")
            .expect("topic exists");
        assert_eq!(h.children_of_top(telecom).len(), 2);
    }

    #[test]
    fn category_names_are_unique() {
        let h = Hierarchy::adwords_like();
        let mut names: Vec<_> = h
            .category_ids()
            .map(|c| h.category_name(c).to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), h.num_categories());
    }

    #[test]
    fn parents_are_consistent_with_children_lists() {
        let h = Hierarchy::adwords_like();
        for t in h.top_ids() {
            for &c in h.children_of_top(t) {
                assert_eq!(h.top_of(c), t);
            }
            assert_eq!(h.top_of(h.top_level_category(t)), t);
        }
    }

    #[test]
    fn second_level_ids_are_contiguous_per_topic() {
        let h = Hierarchy::adwords_like();
        for t in h.top_ids() {
            let kids = h.children_of_top(t);
            for w in kids.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1);
            }
        }
    }

    #[test]
    fn projection_moves_all_mass_to_top_level() {
        let h = Hierarchy::adwords_like();
        let v = CategoryVector::from_pairs(vec![
            (CategoryId(0), 0.5),
            (CategoryId(40), 0.25),
            (CategoryId(327), 1.0),
        ]);
        let top = h.project_to_top(&v);
        let total: f32 = top.iter().sum();
        assert!((total - 1.75).abs() < 1e-6);
        assert_eq!(top.len(), 34);
    }

    #[test]
    fn find_category_and_top_resolve_names() {
        let h = Hierarchy::adwords_like();
        let travel = h.find_top("Travel").expect("Travel exists");
        assert_eq!(h.top_name(travel), "Travel");
        let c = h.find_category("Travel").expect("top-level id resolvable");
        assert_eq!(h.top_of(c), travel);
        // A second-level name resolves to a child of its topic.
        let child = h.children_of_top(travel)[0];
        let by_name = h.find_category(h.category_name(child)).unwrap();
        assert_eq!(by_name, child);
        assert!(h.find_category("No Such Topic").is_none());
        assert!(h.find_top("No Such Topic").is_none());
    }

    #[test]
    fn construction_is_deterministic() {
        let a = Hierarchy::adwords_like();
        let b = Hierarchy::adwords_like();
        for c in a.category_ids() {
            assert_eq!(a.category_name(c), b.category_name(c));
            assert_eq!(a.top_of(c), b.top_of(c));
            assert_eq!(a.deep_nodes_under(c), b.deep_nodes_under(c));
        }
    }
}
