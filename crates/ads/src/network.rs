//! The ad-network baseline.
//!
//! Section 3 of the paper taxonomizes the ads real networks serve:
//! **premium** (brand campaigns shown to everyone on a site), **retargeted**
//! (a product the user saw recently), **contextual** (matching the current
//! page's topic) and **targeted** (matching the user's cookie profile).
//! The "Original" ads of the experiment are this whole mix — which is the
//! paper's own explanation for why its purely-targeted eavesdropper ads can
//! match or beat ad-network CTR (Section 6.3: "ads served by ad-networks
//! include also premium ads, retargeting, massive campaigns, etc.").
//!
//! [`AdNetwork`] reproduces that mix. Its visibility differs from the
//! eavesdropper's in both directions, as in reality:
//!
//! * it sees *full page visits* (cookie tracking), not just hostnames —
//!   so its per-user profile is built from exact site categories;
//! * but only on sites embedding its trackers (`tracker_coverage`), while
//!   the network observer sees every TLS connection.

use crate::ad::{AdDatabase, AdId};
use hostprof_ontology::CategoryVector;
use hostprof_synth::{HostId, UserId, World};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Which serving path produced an ad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedAdKind {
    /// Brand campaign, audience-independent.
    Premium,
    /// A product from the user's recent browsing.
    Retargeted,
    /// Matches the current page's topic.
    Contextual,
    /// Matches the network's cookie profile of the user.
    Targeted,
}

/// Mix and visibility parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdNetworkConfig {
    /// Probability of serving a premium ad.
    pub premium: f64,
    /// Probability of serving a retargeted ad.
    pub retargeted: f64,
    /// Probability of serving a contextual ad.
    pub contextual: f64,
    /// (Remaining probability serves targeted ads.)
    /// Fraction of site visits the network's trackers actually observe.
    pub tracker_coverage: f64,
    /// How many recent site visits the cookie profile window keeps.
    pub profile_window: usize,
    /// How many recent visits feed retargeting.
    pub retarget_window: usize,
}

impl Default for AdNetworkConfig {
    fn default() -> Self {
        Self {
            premium: 0.30,
            retargeted: 0.15,
            contextual: 0.25,
            tracker_coverage: 0.85,
            profile_window: 200,
            retarget_window: 10,
        }
    }
}

/// Per-user cookie state.
#[derive(Debug, Clone, Default)]
struct CookieProfile {
    /// Rolling window of observed site visits (host + categories).
    visits: VecDeque<(HostId, CategoryVector)>,
    /// Aggregated interest estimate.
    profile: CategoryVector,
}

/// The simulated ad network.
#[derive(Debug, Clone)]
pub struct AdNetwork {
    config: AdNetworkConfig,
    cookies: HashMap<UserId, CookieProfile>,
}

impl AdNetwork {
    /// A network with the given mix.
    pub fn new(config: AdNetworkConfig) -> Self {
        Self {
            config,
            cookies: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdNetworkConfig {
        &self.config
    }

    /// Tracker callback: the network observes `user` visiting `site`
    /// (subject to tracker coverage, decided by the caller's RNG).
    pub fn observe_visit<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        world: &World,
        user: UserId,
        site: HostId,
    ) {
        if !rng.gen_bool(self.config.tracker_coverage) {
            return;
        }
        let cats = world.ground_truth(site).clone();
        let cookie = self.cookies.entry(user).or_default();
        cookie.visits.push_back((site, cats));
        while cookie.visits.len() > self.config.profile_window {
            cookie.visits.pop_front();
        }
        // Rebuild the aggregate lazily but cheaply: mean of window.
        let mut agg = CategoryVector::empty();
        let n = cookie.visits.len() as f32;
        for (_, c) in &cookie.visits {
            agg.add_scaled(c, 1.0 / n);
        }
        cookie.profile = agg;
    }

    /// The network's current cookie profile of a user (empty if never
    /// observed).
    pub fn cookie_profile(&self, user: UserId) -> CategoryVector {
        self.cookies
            .get(&user)
            .map(|c| c.profile.clone())
            .unwrap_or_default()
    }

    /// Serve one impression on `site` for `user`. Always returns an ad as
    /// long as the database is non-empty.
    pub fn serve<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        world: &World,
        db: &AdDatabase,
        user: UserId,
        site: HostId,
    ) -> Option<(AdId, ServedAdKind)> {
        if db.is_empty() {
            return None;
        }
        let roll: f64 = rng.gen();
        let c = &self.config;
        if roll < c.premium {
            return Some((self.pick_premium(rng, db), ServedAdKind::Premium));
        }
        if roll < c.premium + c.retargeted {
            if let Some(id) = self.pick_retargeted(rng, db, user) {
                return Some((id, ServedAdKind::Retargeted));
            }
            // No browsing history yet: fall through to contextual.
        }
        if roll < c.premium + c.retargeted + c.contextual {
            return Some((
                self.pick_contextual(rng, world, db, site),
                ServedAdKind::Contextual,
            ));
        }
        Some((self.pick_targeted(rng, db, user), ServedAdKind::Targeted))
    }

    /// Premium: weight-proportional pick over the whole inventory.
    fn pick_premium<R: Rng + ?Sized>(&self, rng: &mut R, db: &AdDatabase) -> AdId {
        // Rejection sampling against the (precomputed) max weight keeps
        // this O(1)-ish per impression.
        let max_w = db.max_weight();
        for _ in 0..64 {
            let cand = &db.ads()[rng.gen_range(0..db.len())];
            if rng.gen_bool((cand.weight / max_w).clamp(0.0, 1.0)) {
                return cand.id;
            }
        }
        db.ads()[rng.gen_range(0..db.len())].id
    }

    /// Retargeted: an ad landing on (or categorically identical to) a
    /// recently visited site.
    fn pick_retargeted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        db: &AdDatabase,
        user: UserId,
    ) -> Option<AdId> {
        let cookie = self.cookies.get(&user)?;
        let recent: Vec<&(HostId, CategoryVector)> = cookie
            .visits
            .iter()
            .rev()
            .take(self.config.retarget_window)
            .collect();
        if recent.is_empty() {
            return None;
        }
        let (host, cats) = recent[rng.gen_range(0..recent.len())];
        // Prefer an ad for that exact landing page; otherwise the closest
        // in category space.
        let exact = db.by_landing_host(*host);
        if !exact.is_empty() {
            return Some(exact[rng.gen_range(0..exact.len())]);
        }
        cats.argmax()
            .and_then(|c| db.closest_ad_in_category(c.0, cats))
    }

    /// Contextual: an ad matching the current page's categories.
    fn pick_contextual<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        world: &World,
        db: &AdDatabase,
        site: HostId,
    ) -> AdId {
        let cats = world.ground_truth(site);
        match cats
            .argmax()
            .and_then(|c| db.closest_ad_in_category(c.0, cats))
        {
            Some(id) => id,
            None => db.ads()[rng.gen_range(0..db.len())].id,
        }
    }

    /// Targeted: an ad matching the cookie profile.
    fn pick_targeted<R: Rng + ?Sized>(&self, rng: &mut R, db: &AdDatabase, user: UserId) -> AdId {
        let profile = self.cookie_profile(user);
        match profile
            .argmax()
            .and_then(|c| db.closest_ad_in_category(c.0, &profile))
        {
            Some(id) => id,
            None => db.ads()[rng.gen_range(0..db.len())].id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_synth::{HostKind, WorldConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (World, AdDatabase, AdNetwork) {
        let world = World::generate(&WorldConfig::tiny());
        let db = AdDatabase::generate(&world, 400, 11);
        let network = AdNetwork::new(AdNetworkConfig::default());
        (world, db, network)
    }

    fn a_site(world: &World) -> HostId {
        world
            .hosts()
            .iter()
            .find(|h| h.kind == HostKind::Site)
            .unwrap()
            .id
    }

    #[test]
    fn serving_always_returns_an_ad() {
        let (world, db, network) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let site = a_site(&world);
        for _ in 0..200 {
            assert!(network
                .serve(&mut rng, &world, &db, UserId(0), site)
                .is_some());
        }
    }

    #[test]
    fn mix_includes_every_kind_once_there_is_history() {
        let (world, db, mut network) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let site = a_site(&world);
        for _ in 0..50 {
            network.observe_visit(&mut rng, &world, UserId(0), site);
        }
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            let (_, kind) = network
                .serve(&mut rng, &world, &db, UserId(0), site)
                .unwrap();
            kinds.insert(kind);
        }
        assert_eq!(
            kinds.len(),
            4,
            "all four serving paths exercised: {kinds:?}"
        );
    }

    #[test]
    fn cookie_profile_tracks_visited_categories() {
        let (world, _, mut network) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let site = a_site(&world);
        for _ in 0..20 {
            network.observe_visit(&mut rng, &world, UserId(5), site);
        }
        let profile = network.cookie_profile(UserId(5));
        let truth = world.ground_truth(site);
        assert!(
            profile.cosine(truth) > 0.95,
            "single-site profile ≈ that site: {}",
            profile.cosine(truth)
        );
        assert!(network.cookie_profile(UserId(99)).is_empty());
    }

    #[test]
    fn contextual_ads_match_the_page_topic() {
        let (world, db, network) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let site = a_site(&world);
        let cats = world.ground_truth(site);
        let id = network.pick_contextual(&mut rng, &world, &db, site);
        let ad = db.ad(id);
        assert!(
            ad.categories.cosine(cats) > 0.3,
            "contextual pick shares topic: {}",
            ad.categories.cosine(cats)
        );
    }

    #[test]
    fn retargeting_needs_history() {
        let (world, db, mut network) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(network.pick_retargeted(&mut rng, &db, UserId(0)).is_none());
        let site = a_site(&world);
        // Force observation despite coverage randomness.
        for _ in 0..30 {
            network.observe_visit(&mut rng, &world, UserId(0), site);
        }
        let id = network.pick_retargeted(&mut rng, &db, UserId(0));
        assert!(id.is_some());
    }

    #[test]
    fn tracker_coverage_limits_visibility() {
        let (world, _, mut network) = setup();
        network.config.tracker_coverage = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let site = a_site(&world);
        for _ in 0..50 {
            network.observe_visit(&mut rng, &world, UserId(1), site);
        }
        assert!(network.cookie_profile(UserId(1)).is_empty());
    }

    #[test]
    fn profile_window_bounds_memory() {
        let (world, _, mut network) = setup();
        network.config.profile_window = 5;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let site = a_site(&world);
        for _ in 0..100 {
            network.observe_visit(&mut rng, &world, UserId(2), site);
        }
        assert!(network.cookies[&UserId(2)].visits.len() <= 5);
    }
}
