//! Lane-by-lane columnar trace generation.
//!
//! [`Trace::generate`](crate::trace::Trace::generate) materializes every
//! request as a struct, globally sorts, and builds a per-user index — at
//! a million users that is several extra copies of the whole trace held
//! at once. This module generates the same trace **one user lane at a
//! time**: each user's requests are emitted into a small scratch buffer,
//! sorted, and appended to a [`TraceColumns`] store; only the columns
//! themselves (12 bytes per observation) are ever resident.
//!
//! Bit-identity with the materialized path is a theorem, not a hope:
//!
//! * `Trace::generate` consumes its single ChaCha8 RNG strictly per-user
//!   in user-id order, so running the shared per-user emitter
//!   ([`trace::emit_user_requests`](crate::trace)) against the same RNG
//!   yields the exact same draws;
//! * the global sort key is `(t_ms, user, host)` with a stable sort, so
//!   restricted to one user it degenerates to `(t_ms, host)` — sorting
//!   each lane locally reproduces `trace.user_requests(u)` exactly.
//!
//! `tests/columnar_equivalence.rs` pins both properties with proptest.

use crate::config::TraceConfig;
use crate::ids::UserId;
use crate::sampling::WeightedIndex;
use crate::trace::{emit_user_requests, Trace, DIURNAL};
use crate::user::Population;
use crate::world::World;
use hostprof_store::{HostInterner, TraceAccess, TraceColumns, TraceColumnsBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Approximate first-flight wire bytes of one request: a deterministic
/// function of the hostname so both generation paths agree — TLS record
/// framing plus the SNI extension carrying the name.
#[inline]
pub fn first_flight_bytes(hostname_len: usize) -> u32 {
    197 + hostname_len as u32
}

/// An interner pre-seeded with every world hostname in `HostId` order,
/// so interned ids coincide with world ids (`intern id == HostId.0`).
pub fn world_interner(world: &World) -> HostInterner {
    let mut interner = HostInterner::new();
    for host in world.hosts() {
        let id = interner.intern(&host.name);
        debug_assert_eq!(id, host.id.0);
    }
    interner
}

/// Stream the trace one user lane at a time: `f(user, lane)` receives
/// each user's `(t_ms, host)` requests in final (time, host) order, users
/// ascending. Nothing but the current lane is resident.
pub fn for_each_user_lane(
    world: &World,
    population: &Population,
    config: &TraceConfig,
    mut f: impl FnMut(UserId, &[(u64, u32)]),
) {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let hour_sampler = WeightedIndex::new(&DIURNAL).expect("diurnal weights positive");
    let mut lane: Vec<(u64, u32)> = Vec::new();
    for user in population.users() {
        lane.clear();
        emit_user_requests(world, user, config, &hour_sampler, &mut rng, |t, host| {
            lane.push((t, host.0));
        });
        // Stable, same key as the global (t, user, host) sort restricted
        // to this user.
        lane.sort_by_key(|&(t, h)| (t, h));
        f(user.id, &lane);
    }
}

/// Generate the trace directly in columnar form. Same seeds, same
/// observations, ~12 bytes per event resident instead of a materialized
/// `Vec<Request>` plus index.
pub fn generate_columnar(
    world: &World,
    population: &Population,
    config: &TraceConfig,
) -> TraceColumns {
    let mut builder = TraceColumnsBuilder::new(world_interner(world), config.days);
    for_each_user_lane(world, population, config, |user, lane| {
        for &(t, host) in lane {
            builder.push_event(
                user.0,
                t,
                host,
                first_flight_bytes(world.hostname(crate::ids::HostId(host)).len()),
            );
        }
    });
    builder.finish(population.len())
}

/// The legacy materialized pair viewed through [`TraceAccess`] — lets the
/// profiler and conformance suite run one code path over both
/// representations. Host ids here are `HostId.0` (world ids), which the
/// columnar path's pre-seeded interner reproduces exactly.
pub struct MaterializedAccess<'a> {
    /// Hostname resolution.
    pub world: &'a World,
    /// The materialized request stream.
    pub trace: &'a Trace,
}

impl TraceAccess for MaterializedAccess<'_> {
    fn num_users(&self) -> usize {
        self.trace.num_users()
    }

    fn num_events(&self) -> usize {
        self.trace.requests().len()
    }

    fn days(&self) -> u32 {
        self.trace.days()
    }

    fn host_name(&self, host: u32) -> &str {
        self.world.hostname(crate::ids::HostId(host))
    }

    fn window_hosts(&self, user: u32, end_ms: u64, duration_ms: u64, out: &mut Vec<u32>) {
        out.extend(
            self.trace
                .window(UserId(user), end_ms, duration_ms)
                .into_iter()
                .map(|h| h.0),
        );
    }

    fn span_hosts(&self, user: u32, start_ms: u64, end_ms: u64, out: &mut Vec<u32>) {
        out.extend(
            self.trace
                .user_requests(UserId(user))
                .filter(|r| r.t_ms >= start_ms && r.t_ms < end_ms)
                .map(|r| r.host.0),
        );
    }

    fn last_time_in(&self, user: u32, start_ms: u64, end_ms: u64) -> Option<u64> {
        self.trace
            .user_requests(UserId(user))
            .filter(|r| r.t_ms >= start_ms && r.t_ms < end_ms)
            .map(|r| r.t_ms)
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PopulationConfig, WorldConfig};
    use crate::trace::DAY_MS;

    fn setup() -> (World, Population, Trace, TraceColumns) {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let cfg = TraceConfig::tiny();
        let trace = Trace::generate(&world, &pop, &cfg);
        let cols = generate_columnar(&world, &pop, &cfg);
        (world, pop, trace, cols)
    }

    #[test]
    fn columnar_matches_materialized_per_user() {
        let (_, pop, trace, cols) = setup();
        assert_eq!(cols.num_users(), trace.num_users());
        assert_eq!(cols.num_events(), trace.requests().len());
        for u in 0..pop.len() as u32 {
            let legacy: Vec<(u64, u32)> = trace
                .user_requests(UserId(u))
                .map(|r| (r.t_ms, r.host.0))
                .collect();
            let columnar: Vec<(u64, u32)> = cols
                .user_times(u)
                .iter()
                .zip(cols.user_hosts(u))
                .map(|(&t, &h)| (t as u64, h))
                .collect();
            assert_eq!(columnar, legacy, "user {u}");
        }
    }

    #[test]
    fn interner_ids_equal_world_ids() {
        let (world, _, _, cols) = setup();
        for host in world.hosts() {
            assert_eq!(cols.interner().name(host.id.0), host.name);
        }
    }

    #[test]
    fn both_accessors_agree_on_windows_and_days() {
        let (world, pop, trace, cols) = setup();
        let mat = MaterializedAccess {
            world: &world,
            trace: &trace,
        };
        assert_eq!(mat.days(), cols.days());
        let day = DAY_MS;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in 0..pop.len() as u32 {
            for (end, dur) in [(day, 30 * 60_000), (2 * day, day), (day / 2, u64::MAX)] {
                a.clear();
                b.clear();
                mat.window_hosts(u, end, dur, &mut a);
                cols.window_hosts(u, end, dur, &mut b);
                assert_eq!(a, b, "window user {u} end {end} dur {dur}");
            }
            a.clear();
            b.clear();
            mat.span_hosts(u, 0, day, &mut a);
            cols.span_hosts(u, 0, day, &mut b);
            assert_eq!(a, b, "span user {u}");
            assert_eq!(
                mat.last_time_in(u, day, 2 * day),
                cols.last_time_in(u, day, 2 * day),
                "last_time user {u}"
            );
        }
    }

    #[test]
    fn daily_sequences_match() {
        let (_, _, trace, cols) = setup();
        for day in 0..trace.days() {
            let legacy: Vec<(u32, Vec<u32>)> = trace
                .daily_sequences(day)
                .into_iter()
                .map(|(u, seq)| (u.0, seq.into_iter().map(|h| h.0).collect()))
                .collect();
            assert_eq!(cols.daily_sequences(day, DAY_MS), legacy, "day {day}");
        }
    }

    #[test]
    fn lanes_stream_in_user_order_without_global_state() {
        let world = World::generate(&WorldConfig::tiny());
        let pop = Population::generate(&world, &PopulationConfig::tiny());
        let cfg = TraceConfig::tiny();
        let mut last_user = None;
        let mut total = 0usize;
        for_each_user_lane(&world, &pop, &cfg, |user, lane| {
            assert!(last_user < Some(user.0), "ascending user order");
            last_user = Some(user.0);
            total += lane.len();
            for w in lane.windows(2) {
                assert!(w[0] <= w[1], "lanes are sorted");
            }
        });
        assert_eq!(total, Trace::generate(&world, &pop, &cfg).requests().len());
    }
}
