//! Offline in-tree subset of the `bytes` crate.
//!
//! The workspace builds in a sealed container with no crates.io access, so
//! the handful of external APIs the codebase uses are vendored as small
//! compatible implementations. This crate provides [`Bytes`]: an immutable,
//! reference-counted byte buffer that clones in O(1), which is all the
//! packet/capture layers need.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (no allocation beyond the Arc header).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy a sub-range into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self {
            data: self.data[range].into(),
        }
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self {
            data: v.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn static_and_slice() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.slice(1..3), Bytes::from(vec![b'e', b'l']));
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
