//! Small, from-scratch samplers.
//!
//! The workspace's allowed dependency set does not include `rand_distr`, so
//! the handful of distributions the generator needs are implemented here:
//! Zipf (via precomputed CDF), Poisson (Knuth's method, normal approximation
//! for large means), log-normal (Box–Muller), Gamma (Marsaglia–Tsang) and
//! Dirichlet (normalized Gammas). All take a generic [`rand::Rng`].

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample with the given parameters of the underlying normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Poisson sample.
///
/// Knuth's multiplication method for small `lambda`; for `lambda > 30` a
/// rounded normal approximation is used (adequate for session counts).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson rate must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Gamma(shape, 1) sample by Marsaglia–Tsang; `shape > 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Dirichlet sample over `alphas.len()` components.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alphas: &[f64]) -> Vec<f64> {
    assert!(!alphas.is_empty(), "dirichlet needs at least one component");
    let gammas: Vec<f64> = alphas.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = gammas.iter().sum();
    if sum <= 0.0 {
        // Degenerate numeric corner: fall back to uniform.
        return vec![1.0 / alphas.len() as f64; alphas.len()];
    }
    gammas.into_iter().map(|g| g / sum).collect()
}

/// A Zipf sampler over ranks `0 .. n` with exponent `s`: probability of rank
/// `r` is proportional to `1 / (r + 1)^s`. Sampling is O(log n) via binary
/// search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF. `n` must be at least 1.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf over an empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n >= 1");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0 .. n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // `c <= u` (not `c < u`) so a draw of exactly 0.0 cannot select a
        // zero-mass prefix entry.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// Weighted index sampling without building an alias table: O(n) setup,
/// O(log n) per sample. Weights must be non-negative with a positive sum.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Build from weights.
    ///
    /// Returns `None` when `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight");
            acc += w.max(0.0);
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Some(Self { cdf })
    }

    /// Sample an index in `0 .. weights.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // `c <= u` so a draw of exactly 0.0 lands on the first index with
        // positive mass, never on a zero-weight prefix entry.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn normal_mean_and_variance_are_plausible() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 3.0, 12.0, 60.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.08,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn gamma_mean_is_shape() {
        let mut r = rng();
        for &shape in &[0.3, 1.0, 4.5] {
            let n = 30_000;
            let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.08 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alphas() {
        let mut r = rng();
        let alphas = [2.0, 1.0, 1.0];
        let n = 10_000;
        let mut acc = [0.0f64; 3];
        for _ in 0..n {
            let d = dirichlet(&mut r, &alphas);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (a, x) in acc.iter_mut().zip(&d) {
                *a += x;
            }
        }
        // Expected proportions 0.5, 0.25, 0.25.
        assert!((acc[0] / n as f64 - 0.5).abs() < 0.02);
        assert!((acc[1] / n as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    fn zipf_is_heavy_headed_and_normalized() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            z.pmf(0) > 10.0 * z.pmf(99),
            "rank 0 much more likely than rank 99"
        );
        let mut r = rng();
        let mut head = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // First 10 ranks carry ~39 % of the mass at s=1, n=1000.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.5, "head fraction {frac}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[0.0, 3.0, 1.0]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_degenerate_inputs() {
        assert!(WeightedIndex::new(&[]).is_none());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 1.0, 0.8) > 0.0);
        }
    }
}
