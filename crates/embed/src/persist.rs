//! Flat-container persistence for trained embeddings.
//!
//! The JSON serde path is fine for golden snapshots but quadratic-feeling
//! at a 10⁵-token vocabulary (every f32 printed, reparsed, revalidated).
//! This module writes an [`EmbeddingSet`] into the same mmap-friendly
//! flat layout (`hostprof-store::flat`, DESIGN.md §13) the columnar trace
//! store uses: aligned little-endian sections, vectors as raw f32 bit
//! patterns, the vocabulary as one concatenated string arena plus an
//! offsets column. Round-trips are bit-identical — norms and the
//! unit-norm view are derived state and rebuilt on load, exactly as the
//! serde path does.

use crate::embedding::EmbeddingSet;
use crate::vocab::Vocab;
use hostprof_store::{FlatError, FlatReader, FlatWriter};

mod tag {
    pub const META: u32 = 0x454d_4254; // dim, vocab len, total_count
    pub const TOKENS: u32 = 0x544f_4b53; // concatenated token arena
    pub const TOKEN_OFFS: u32 = 0x544f_4646; // arena offsets, len + 1
    pub const COUNTS: u32 = 0x434e_5453; // corpus counts, u64
    pub const KEEP: u32 = 0x4b45_4550; // keep probabilities, f64 bits
    pub const VECTORS: u32 = 0x5645_4354; // row-major matrix, f32 bits
}

/// Encode an embedding set into one flat buffer.
pub fn to_flat_bytes(set: &EmbeddingSet) -> Vec<u8> {
    let vocab = set.vocab();
    let mut arena = String::new();
    let mut offs: Vec<u32> = Vec::with_capacity(vocab.len() + 1);
    offs.push(0);
    for (_, tok) in vocab.iter() {
        arena.push_str(tok);
        offs.push(arena.len() as u32);
    }
    let keep_bits: Vec<u64> = vocab.keep_probs().iter().map(|p| p.to_bits()).collect();
    let vectors: Vec<f32> = (0..vocab.len() as u32)
        .flat_map(|i| set.vector_by_index(i).iter().copied())
        .collect();
    let mut w = FlatWriter::new();
    w.section_u64s(
        tag::META,
        &[set.dim() as u64, vocab.len() as u64, vocab.total_count()],
    )
    .section_str(tag::TOKENS, &arena)
    .section_u32s(tag::TOKEN_OFFS, &offs)
    .section_u64s(tag::COUNTS, vocab.counts())
    .section_u64s(tag::KEEP, &keep_bits)
    .section_f32s(tag::VECTORS, &vectors);
    w.finish()
}

/// Decode a buffer produced by [`to_flat_bytes`].
pub fn from_flat_bytes(buf: &[u8]) -> Result<EmbeddingSet, FlatError> {
    let r = FlatReader::new(buf)?;
    let meta = r.u64s(tag::META)?;
    if meta.len() != 3 {
        return Err(FlatError::BadSectionLen {
            tag: tag::META,
            len: meta.len(),
            elem: 3,
        });
    }
    let (dim, vlen, total_count) = (meta[0] as usize, meta[1] as usize, meta[2]);
    let arena = r.str(tag::TOKENS)?;
    let offs = r.u32s(tag::TOKEN_OFFS)?;
    let counts = r.u64s(tag::COUNTS)?;
    let keep: Vec<f64> = r.u64s(tag::KEEP)?.into_iter().map(f64::from_bits).collect();
    let vectors = r.f32s(tag::VECTORS)?;
    if offs.len() != vlen + 1
        || counts.len() != vlen
        || keep.len() != vlen
        || vectors.len() != vlen * dim
    {
        return Err(FlatError::Truncated);
    }
    let tokens: Vec<String> = offs
        .windows(2)
        .map(|w| arena[w[0] as usize..w[1] as usize].to_string())
        .collect();
    let vocab = Vocab::from_parts(tokens, counts, keep, total_count);
    Ok(EmbeddingSet::new(dim, vocab, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkipGramConfig;
    use crate::model::SkipGram;

    fn trained() -> EmbeddingSet {
        let seqs: Vec<Vec<String>> = (0..30)
            .map(|i| {
                (0..8)
                    .map(|j| format!("h{}.example", (i * 3 + j) % 12))
                    .collect()
            })
            .collect();
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 2,
            ..SkipGramConfig::default()
        };
        SkipGram::train(&seqs, &cfg).unwrap().into_embeddings()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let e = trained();
        let buf = to_flat_bytes(&e);
        let back = from_flat_bytes(&buf).unwrap();
        assert_eq!(back.dim(), e.dim());
        assert_eq!(back.len(), e.len());
        for i in 0..e.len() as u32 {
            assert_eq!(back.vocab().token(i), e.vocab().token(i));
            assert_eq!(back.vocab().count(i), e.vocab().count(i));
            assert_eq!(back.vocab().keep_prob(i), e.vocab().keep_prob(i));
            let (a, b) = (e.vector_by_index(i), back.vector_by_index(i));
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Query behavior identical: same kNN bits.
        let q = e.vector_by_index(0).to_vec();
        let ra = e.nearest_to_vector(&q, 5);
        let rb = back.nearest_to_vector(&q, 5);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        // Deterministic encoding.
        assert_eq!(to_flat_bytes(&back), buf);
    }

    #[test]
    fn corrupt_buffers_error_cleanly() {
        let e = trained();
        let buf = to_flat_bytes(&e);
        assert!(from_flat_bytes(&buf[..24]).is_err());
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(from_flat_bytes(&bad).is_err());
    }
}
