//! Trained embeddings and similarity queries.
//!
//! After training, the profiler needs three operations (paper Section 4.1):
//! aggregate a session's hostname vectors into a session vector
//! ([`EmbeddingSet::mean_vector`]), find the `N = 1000` hostnames most
//! similar to it by cosine ([`EmbeddingSet::nearest_to_vector`]), and score
//! individual hostnames against the session ([`EmbeddingSet::cosine_to`]).

use crate::index::{ExactScan, NnIndex};
use crate::knn::KnnScratch;
use crate::vocab::Vocab;
use serde::{DeError, Deserialize, Serialize, Value};
use std::cell::RefCell;

thread_local! {
    /// Scratch for the convenience (non-`_with`) query methods, so one-off
    /// callers stop paying a fresh scratch allocation per call. The `_with`
    /// entry points never touch this, so no call path borrows it twice.
    static LOCAL_SCRATCH: RefCell<KnnScratch> = RefCell::new(KnnScratch::new());
}

/// A frozen `|V| × d` embedding matrix with its vocabulary.
///
/// Alongside the raw matrix, construction prepares a row-normalized copy
/// (`unit`) so cosine kNN reduces to dot products against unit vectors —
/// see [`crate::knn`]. The prepared view is derived state: it is rebuilt
/// on deserialization rather than persisted.
#[derive(Debug, Clone)]
pub struct EmbeddingSet {
    dim: usize,
    vocab: Vocab,
    /// Row-major vectors.
    vectors: Vec<f32>,
    /// Precomputed L2 norms, row-aligned.
    norms: Vec<f32>,
    /// Unit-norm rows (zero rows stay zero), row-aligned with `vectors`.
    unit: Vec<f32>,
}

impl Serialize for EmbeddingSet {
    fn to_value(&self) -> Value {
        // Matches the former derived layout; `unit` is derived state.
        Value::Map(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("vocab".to_string(), self.vocab.to_value()),
            ("vectors".to_string(), self.vectors.to_value()),
            ("norms".to_string(), self.norms.to_value()),
        ])
    }
}

impl Deserialize for EmbeddingSet {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::expected("object", "EmbeddingSet"))?;
        let dim = usize::from_value(serde::map_get(map, "dim", "EmbeddingSet")?)?;
        let vocab = Vocab::from_value(serde::map_get(map, "vocab", "EmbeddingSet")?)?;
        let vectors = Vec::<f32>::from_value(serde::map_get(map, "vectors", "EmbeddingSet")?)?;
        if vectors.len() != vocab.len() * dim {
            return Err(DeError::custom(format!(
                "EmbeddingSet shape mismatch: {} floats for {} x {}",
                vectors.len(),
                vocab.len(),
                dim
            )));
        }
        // Norms and the unit-norm view are recomputed from the matrix.
        Ok(EmbeddingSet::new(dim, vocab, vectors))
    }
}

impl EmbeddingSet {
    /// Wrap a trained matrix. `vectors.len()` must equal
    /// `vocab.len() * dim`.
    pub fn new(dim: usize, vocab: Vocab, vectors: Vec<f32>) -> Self {
        assert_eq!(vectors.len(), vocab.len() * dim, "matrix shape mismatch");
        let norms: Vec<f32> = (0..vocab.len())
            .map(|i| {
                vectors[i * dim..(i + 1) * dim]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f32>()
                    .sqrt()
            })
            .collect();
        let mut unit = vec![0f32; vectors.len()];
        for (i, &norm) in norms.iter().enumerate() {
            if norm > f32::EPSILON {
                for (u, v) in unit[i * dim..(i + 1) * dim]
                    .iter_mut()
                    .zip(&vectors[i * dim..(i + 1) * dim])
                {
                    *u = v / norm;
                }
            }
        }
        Self {
            dim,
            vocab,
            vectors,
            norms,
            unit,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded tokens.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Vector of a token, if in vocabulary.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|i| self.vector_by_index(i))
    }

    /// Vector by dense index.
    ///
    /// # Panics
    /// Panics when the index is out of range.
    pub fn vector_by_index(&self, idx: u32) -> &[f32] {
        &self.vectors[idx as usize * self.dim..(idx as usize + 1) * self.dim]
    }

    /// Cosine similarity between two tokens (None if either is unknown).
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        let ia = self.vocab.get(a)?;
        let ib = self.vocab.get(b)?;
        Some(self.cosine_indices(ia, ib))
    }

    /// Cosine similarity between two indexed tokens.
    pub fn cosine_indices(&self, a: u32, b: u32) -> f32 {
        let va = self.vector_by_index(a);
        let vb = self.vector_by_index(b);
        let denom = self.norms[a as usize] * self.norms[b as usize];
        if denom <= f32::EPSILON {
            return 0.0;
        }
        dot(va, vb) / denom
    }

    /// Cosine between an arbitrary query vector and an indexed token.
    pub fn cosine_to(&self, query: &[f32], idx: u32) -> f32 {
        debug_assert_eq!(query.len(), self.dim);
        let qn = dot(query, query).sqrt();
        let denom = qn * self.norms[idx as usize];
        if denom <= f32::EPSILON {
            return 0.0;
        }
        dot(query, self.vector_by_index(idx)) / denom
    }

    /// The aggregation function `g`: element-wise mean of the vectors of
    /// the known tokens in `tokens`. Returns `None` when no token is in
    /// vocabulary (the paper's `s_u^T` cannot be empty; callers decide how
    /// to handle sessions the eavesdropper cannot embed).
    pub fn mean_vector<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Option<Vec<f32>> {
        let mut acc = vec![0f32; self.dim];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.vector(t) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        for a in &mut acc {
            *a /= n as f32;
        }
        Some(acc)
    }

    /// Unit-norm row matrix (zero rows stay zero), for index kernels.
    pub(crate) fn unit_rows(&self) -> &[f32] {
        &self.unit
    }

    /// Precomputed L2 norms, row-aligned with the matrix.
    pub(crate) fn row_norms(&self) -> &[f32] {
        &self.norms
    }

    /// The `n` tokens most cosine-similar to `query`, descending (exact
    /// similarity ties break toward the lower index). Zero-norm rows are
    /// skipped. Always the exact brute-force scan — the honest baseline an
    /// approximate index is benchmarked against; pass an
    /// [`crate::index::NnIndex`] to [`Self::nearest_to_vector_with_index`]
    /// to opt into approximate search.
    pub fn nearest_to_vector(&self, query: &[f32], n: usize) -> Vec<(u32, f32)> {
        LOCAL_SCRATCH.with(|s| self.nearest_to_vector_with(query, n, &mut s.borrow_mut()))
    }

    /// [`Self::nearest_to_vector`] with caller-owned scratch, so repeated
    /// scans reuse the query buffer and heap allocations.
    pub fn nearest_to_vector_with(
        &self,
        query: &[f32],
        n: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<(u32, f32)> {
        self.nearest_to_vector_with_index(query, n, &ExactScan, scratch)
    }

    /// [`Self::nearest_to_vector`] through an explicit search index.
    /// With [`ExactScan`] this is bit-identical to the plain scan.
    pub fn nearest_to_vector_with_index(
        &self,
        query: &[f32],
        n: usize,
        index: &dyn NnIndex,
        scratch: &mut KnnScratch,
    ) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let qn = crate::simd::dot(query, query).sqrt();
        if qn <= f32::EPSILON || n == 0 {
            return Vec::new();
        }
        // Move the buffer out so the index can borrow the scratch heaps
        // mutably alongside the query slice.
        let mut qhat = std::mem::take(&mut scratch.qhat);
        qhat.clear();
        qhat.extend(query.iter().map(|x| x / qn));
        let mut results = index.search(self, &qhat, n, scratch);
        scratch.qhat = qhat;
        results.pop().unwrap_or_default()
    }

    /// Batched [`Self::nearest_to_vector`]: scores all queries against
    /// each cache-sized tile of the vocabulary before moving to the next
    /// tile. Zero-norm queries produce empty result rows. Output is
    /// bit-for-bit identical to calling the single-query path per query —
    /// both run the same kernel with the same per-pair operations.
    pub fn nearest_to_vectors(&self, queries: &[Vec<f32>], n: usize) -> Vec<Vec<(u32, f32)>> {
        LOCAL_SCRATCH.with(|s| self.nearest_to_vectors_with(queries, n, &mut s.borrow_mut()))
    }

    /// [`Self::nearest_to_vectors`] with caller-owned scratch.
    pub fn nearest_to_vectors_with(
        &self,
        queries: &[Vec<f32>],
        n: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<Vec<(u32, f32)>> {
        self.nearest_to_vectors_with_index(queries, n, &ExactScan, scratch)
    }

    /// Batched search through an explicit index; the search strategy never
    /// changes the zero-query handling or result layout.
    pub fn nearest_to_vectors_with_index(
        &self,
        queries: &[Vec<f32>],
        n: usize,
        index: &dyn NnIndex,
        scratch: &mut KnnScratch,
    ) -> Vec<Vec<(u32, f32)>> {
        let mut qhat = std::mem::take(&mut scratch.qhat);
        qhat.clear();
        let mut slot_of: Vec<Option<usize>> = Vec::with_capacity(queries.len());
        let mut slots = 0usize;
        for query in queries {
            assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
            let qn = crate::simd::dot(query, query).sqrt();
            if qn <= f32::EPSILON || n == 0 {
                slot_of.push(None);
                continue;
            }
            qhat.extend(query.iter().map(|x| x / qn));
            slot_of.push(Some(slots));
            slots += 1;
        }
        let mut packed = index.search(self, &qhat, n, scratch);
        scratch.qhat = qhat;
        slot_of
            .into_iter()
            .map(|slot| {
                slot.map(|i| std::mem::take(&mut packed[i]))
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Subtract the mean embedding from every vector and rebuild norms.
    ///
    /// Small corpora produce a strong common direction (hubness): every
    /// pair of hostnames ends up with a large positive cosine, which
    /// flattens the α-weights of the profiler's Eq. 3. Removing the mean —
    /// the first step of the standard "all-but-the-top" postprocessing —
    /// restores contrast. Embeddings trained at the paper's data scale do
    /// not need this, so it is opt-in via the pipeline config.
    pub fn centered(mut self) -> Self {
        if self.vocab.is_empty() {
            return self;
        }
        let n = self.vocab.len();
        let mut mean = vec![0f32; self.dim];
        for i in 0..n {
            for (m, v) in mean
                .iter_mut()
                .zip(&self.vectors[i * self.dim..(i + 1) * self.dim])
            {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        for i in 0..n {
            for (d, m) in mean.iter().enumerate() {
                self.vectors[i * self.dim + d] -= m;
            }
        }
        Self::new(self.dim, self.vocab, self.vectors)
    }

    /// Analogy query: `a` is to `b` as `c` is to … — solved as the tokens
    /// nearest to `vec(b) − vec(a) + vec(c)` (excluding the three query
    /// tokens). A standard embedding-space sanity probe: in a well-trained
    /// hostname space, "news-site : news-CDN :: shop-site : shop-CDN"-style
    /// relations hold approximately.
    pub fn analogy(&self, a: &str, b: &str, c: &str, n: usize) -> Vec<(String, f32)> {
        LOCAL_SCRATCH.with(|s| self.analogy_with(a, b, c, n, &mut s.borrow_mut()))
    }

    /// [`Self::analogy`] with caller-owned scratch.
    pub fn analogy_with(
        &self,
        a: &str,
        b: &str,
        c: &str,
        n: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<(String, f32)> {
        let (Some(va), Some(vb), Some(vc)) = (self.vector(a), self.vector(b), self.vector(c))
        else {
            return Vec::new();
        };
        let query: Vec<f32> = va
            .iter()
            .zip(vb)
            .zip(vc)
            .map(|((x, y), z)| y - x + z)
            .collect();
        let exclude: [Option<u32>; 3] = [self.vocab.get(a), self.vocab.get(b), self.vocab.get(c)];
        self.nearest_to_vector_with(&query, n + 3, scratch)
            .into_iter()
            .filter(|(i, _)| !exclude.contains(&Some(*i)))
            .take(n)
            .map(|(i, s)| (self.vocab.token(i).to_string(), s))
            .collect()
    }

    /// The `n` tokens most similar to `token` (token itself excluded).
    pub fn most_similar(&self, token: &str, n: usize) -> Vec<(String, f32)> {
        LOCAL_SCRATCH.with(|s| self.most_similar_with(token, n, &mut s.borrow_mut()))
    }

    /// [`Self::most_similar`] with caller-owned scratch.
    pub fn most_similar_with(
        &self,
        token: &str,
        n: usize,
        scratch: &mut KnnScratch,
    ) -> Vec<(String, f32)> {
        let Some(idx) = self.vocab.get(token) else {
            return Vec::new();
        };
        let query = self.vector_by_index(idx).to_vec();
        self.nearest_to_vector_with(&query, n + 1, scratch)
            .into_iter()
            .filter(|(i, _)| *i != idx)
            .take(n)
            .map(|(i, s)| (self.vocab.token(i).to_string(), s))
            .collect()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-D embedding: two tight groups on orthogonal axes.
    fn toy() -> EmbeddingSet {
        let seqs = vec![vec!["a0", "a1", "a2", "b0", "b1", "zero"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("a0", [1.0, 0.0]);
        set("a1", [0.9, 0.1]);
        set("a2", [1.0, 0.05]);
        set("b0", [0.0, 1.0]);
        set("b1", [0.1, 0.9]);
        set("zero", [0.0, 0.0]);
        EmbeddingSet::new(2, vocab, vectors)
    }

    #[test]
    fn cosine_identifies_groups() {
        let e = toy();
        assert!(e.cosine("a0", "a1").unwrap() > 0.98);
        assert!(e.cosine("a0", "b0").unwrap() < 0.1);
        assert!(e.cosine("a0", "nope").is_none());
    }

    #[test]
    fn most_similar_excludes_self_and_ranks() {
        let e = toy();
        let sims = e.most_similar("a0", 2);
        assert_eq!(sims.len(), 2);
        assert!(sims[0].0.starts_with('a'));
        assert!(sims[1].0.starts_with('a'));
        assert!(sims[0].1 >= sims[1].1);
    }

    #[test]
    fn mean_vector_averages_known_tokens() {
        let e = toy();
        let m = e.mean_vector(["a0", "b0", "unknown"]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-6);
        assert!((m[1] - 0.5).abs() < 1e-6);
        assert!(e.mean_vector(["nope", "nada"]).is_none());
    }

    #[test]
    fn nearest_to_vector_skips_zero_rows_and_sorts() {
        let e = toy();
        let res = e.nearest_to_vector(&[1.0, 0.0], 10);
        assert_eq!(res.len(), 5, "zero-norm token skipped");
        for w in res.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(e.vocab().token(res[0].0).chars().next(), Some('a'));
    }

    #[test]
    fn nearest_with_zero_query_is_empty() {
        let e = toy();
        assert!(e.nearest_to_vector(&[0.0, 0.0], 3).is_empty());
        assert!(e.nearest_to_vector(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn top_n_truncation_keeps_the_best() {
        let e = toy();
        let all = e.nearest_to_vector(&[1.0, 0.0], 5);
        let top2 = e.nearest_to_vector(&[1.0, 0.0], 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].0, all[0].0);
        assert_eq!(top2[1].0, all[1].0);
    }

    #[test]
    fn centering_removes_the_common_direction() {
        // All vectors share a large offset along x.
        let seqs = vec![vec!["p", "q", "r"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; 6];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("p", [10.0, 1.0]);
        set("q", [10.0, -1.0]);
        set("r", [10.0, 0.0]);
        let raw = EmbeddingSet::new(2, vocab, vectors);
        assert!(
            raw.cosine("p", "q").unwrap() > 0.9,
            "hubness before centering"
        );
        let centered = raw.centered();
        assert!(
            centered.cosine("p", "q").unwrap() < -0.9,
            "opposed after removing the common direction"
        );
    }

    #[test]
    fn analogy_solves_the_parallelogram() {
        // Build vectors where b - a == d - c exactly.
        let seqs = vec![vec!["a", "b", "c", "d", "e"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        let mut set = |name: &str, v: [f32; 2]| {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = v[0];
            vectors[i * 2 + 1] = v[1];
        };
        set("a", [1.0, 0.0]);
        set("b", [1.0, 1.0]); // b = a + (0,1)
        set("c", [2.0, 0.1]);
        set("d", [2.0, 1.1]); // d = c + (0,1)
        set("e", [-1.0, -1.0]);
        let emb = EmbeddingSet::new(2, vocab, vectors);
        let result = emb.analogy("a", "b", "c", 1);
        assert_eq!(result[0].0, "d", "{result:?}");
        assert!(emb.analogy("a", "b", "missing", 1).is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        let e = toy();
        let json = serde_json::to_string(&e).unwrap();
        let back: EmbeddingSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.cosine("a0", "a1"), e.cosine("a0", "a1"));
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn wrong_shape_panics() {
        let vocab = Vocab::build(vec![vec!["x"]], 1, 0.0);
        let _ = EmbeddingSet::new(3, vocab, vec![0.0; 2]);
    }

    /// Exact similarity ties (duplicate rows) must order by ascending
    /// vocabulary index, every run.
    #[test]
    fn knn_breaks_exact_ties_by_ascending_index() {
        let seqs = vec![vec!["t0", "t1", "t2", "t3", "other"]];
        let vocab = Vocab::build(seqs, 1, 0.0);
        let mut vectors = vec![0f32; vocab.len() * 2];
        for name in ["t0", "t1", "t2", "t3"] {
            let i = vocab.get(name).unwrap() as usize;
            vectors[i * 2] = 0.6;
            vectors[i * 2 + 1] = 0.8;
        }
        let other = vocab.get("other").unwrap() as usize;
        vectors[other * 2] = -1.0;
        let e = EmbeddingSet::new(2, vocab, vectors);
        let res = e.nearest_to_vector(&[0.6, 0.8], 3);
        assert_eq!(res.len(), 3);
        // All three results are duplicates with identical similarity…
        assert_eq!(res[0].1.to_bits(), res[1].1.to_bits());
        assert_eq!(res[1].1.to_bits(), res[2].1.to_bits());
        // …so they must come out in ascending index order.
        assert!(res[0].0 < res[1].0 && res[1].0 < res[2].0, "{res:?}");
    }

    /// The batched scan must agree with the one-query-at-a-time scan
    /// bit-for-bit: same indices, same similarity bits.
    #[test]
    fn batched_knn_is_bit_identical_to_single_query() {
        let e = toy();
        let queries: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 0.0], // zero query: empty result row
            vec![0.3, 0.7],
            vec![-1.0, 0.2],
        ];
        for n in [0, 1, 2, 100] {
            let batched = e.nearest_to_vectors(&queries, n);
            assert_eq!(batched.len(), queries.len());
            for (q, batch_row) in queries.iter().zip(&batched) {
                let single = e.nearest_to_vector(q, n);
                assert_eq!(single.len(), batch_row.len());
                for (s, b) in single.iter().zip(batch_row) {
                    assert_eq!(s.0, b.0);
                    assert_eq!(s.1.to_bits(), b.1.to_bits());
                }
            }
        }
    }

    /// Preparing the unit-norm view must not perturb the raw-vector
    /// cosine path: `cosine_indices` stays exactly (f32-bit) equal to the
    /// straightforward dot/(|a||b|) computation on the stored matrix.
    #[test]
    fn unit_norm_preparation_leaves_cosine_indices_unchanged() {
        let e = toy();
        for a in 0..e.len() as u32 {
            for b in 0..e.len() as u32 {
                let va = e.vector_by_index(a);
                let vb = e.vector_by_index(b);
                let na = va.iter().map(|x| x * x).sum::<f32>().sqrt();
                let nb = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
                let expected = if na * nb <= f32::EPSILON {
                    0.0
                } else {
                    va.iter().zip(vb).map(|(x, y)| x * y).sum::<f32>() / (na * nb)
                };
                assert_eq!(e.cosine_indices(a, b).to_bits(), expected.to_bits());
            }
        }
        // And a serde roundtrip (which rebuilds the prepared view) keeps
        // the same bits too.
        let back: EmbeddingSet = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        for a in 0..e.len() as u32 {
            for b in 0..e.len() as u32 {
                assert_eq!(
                    back.cosine_indices(a, b).to_bits(),
                    e.cosine_indices(a, b).to_bits()
                );
            }
        }
    }

    /// Scratch reuse must not change results.
    #[test]
    fn scratch_reuse_is_transparent() {
        let e = toy();
        let mut scratch = crate::KnnScratch::new();
        let first = e.nearest_to_vector_with(&[1.0, 0.0], 4, &mut scratch);
        let _ = e.nearest_to_vector_with(&[0.2, 0.9], 2, &mut scratch);
        let again = e.nearest_to_vector_with(&[1.0, 0.0], 4, &mut scratch);
        assert_eq!(first, again);
        assert_eq!(first, e.nearest_to_vector(&[1.0, 0.0], 4));
    }
}
