//! `chaosprobe` — the chaos conformance harness as an operational tool.
//!
//! Runs the same four acceptance properties as `tests/chaos_observer.rs`
//! (no panic + classified errors, clean-flow bit-identity, pending-memory
//! caps, seed replayability) over a configurable seed matrix, and prints
//! an aggregate mutation/stats table. Exit code is nonzero as soon as any
//! property fails, so it slots into CI as a smoke gate:
//!
//! ```text
//! chaosprobe --smoke                   # 16 seeds, balanced + aggressive
//! chaosprobe --seeds 500 --seed-base 7000
//! chaosprobe --aggressive --seeds 200
//! chaosprobe --gen-vectors             # print the golden vector corpus
//! ```

use hostprof::net::observer::ObserverConfig;
use hostprof::net::{
    chaos, quic, tls, ChaosConfig, FlowKey, Packet, RequestEvent, SniObserver, TrafficSynthesizer,
};
use std::process::ExitCode;

/// splitmix64 used only to vary the shape of each case's traffic.
struct ShapeRng(u64);

impl ShapeRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn stream_for(seed: u64) -> Vec<Packet> {
    let mut rng = ShapeRng(seed.wrapping_mul(0x9e6c_63d0_876a_9a7d) ^ 0x0b5e_ed01);
    let events = 3 + rng.below(24);
    let clients = 1 + rng.below(5) as u32;
    let hosts = 1 + rng.below(8);
    let synth = TrafficSynthesizer {
        quic_fraction: rng.below(5) as f64 * 0.25,
        dns_fraction: rng.below(4) as f64 * 0.15,
        ech_fraction: rng.below(3) as f64 * 0.2,
        tcp_fragment_fraction: rng.below(5) as f64 * 0.25,
        ..TrafficSynthesizer::default()
    };
    let events: Vec<RequestEvent> = (0..events)
        .map(|i| RequestEvent {
            t_ms: 500 + i * (40 + rng.below(500)),
            client: (i as u32) % clients,
            hostname: format!("w{}.case{}.example.org", rng.below(hosts), seed % 89),
        })
        .collect();
    synth.synthesize(&events)
}

/// Aggregate counters across a probe run.
#[derive(Default)]
struct Tally {
    seeds: u64,
    packets_in: u64,
    packets_out: u64,
    clean_flows: u64,
    mutated_flows: u64,
    garbage_flows: u64,
    observations: u64,
    parse_errors: u64,
    failures: Vec<String>,
}

/// Run all four properties for one seed; record any violation.
fn probe_seed(seed: u64, aggressive: bool, tally: &mut Tally) {
    let stream = stream_for(seed);
    let cfg = if aggressive {
        ChaosConfig::aggressive(seed)
    } else {
        ChaosConfig::with_seed(seed)
    };
    let out = chaos::apply(&cfg, &stream);

    // (d) replayability first: a second pass must match bit for bit.
    let replay = chaos::apply(&cfg, &stream);
    if replay.packets != out.packets || replay.stats != out.stats {
        tally
            .failures
            .push(format!("seed {seed}: chaos replay diverged"));
    }

    // (a) + (c): run the observer (tight caps) over the mutated stream.
    let caps = ObserverConfig {
        max_pending_bytes: 2_048,
        max_pending_segments: 8,
        max_pending_flows: 8,
        max_total_pending_bytes: 8_192,
    };
    let mut obs = SniObserver::with_config(caps).with_dns_harvesting();
    for pkt in &out.packets {
        obs.process(pkt);
        if obs.pending_bytes() > caps.max_total_pending_bytes
            || obs.pending_flows() > caps.max_pending_flows
        {
            tally.failures.push(format!(
                "seed {seed}: pending over caps ({}B / {} flows)",
                obs.pending_bytes(),
                obs.pending_flows()
            ));
            break;
        }
    }
    let stats = obs.stats();
    if stats.parse_errors != stats.taxonomy_total() || stats.reassembly_invariant != 0 {
        tally
            .failures
            .push(format!("seed {seed}: taxonomy imbalance: {stats:?}"));
    }

    // (b) clean-flow bit-identity, via per-flow solo replay. Skipped under
    // --aggressive caps-stress: tiny caps may evict clean flows that share
    // the stream with a garbage flood, which is exactly what the balanced
    // profile exists to check.
    if !aggressive {
        let mut chaotic = SniObserver::new();
        chaotic.process_stream(&out.packets);
        for key in &out.clean_flows {
            let flow_pkts: Vec<Packet> = stream
                .iter()
                .filter(|p| FlowKey::of(p) == *key)
                .cloned()
                .collect();
            let mut solo = SniObserver::new();
            solo.process_stream(&flow_pkts);
            for want in solo.observations() {
                if !chaotic.observations().contains(want) {
                    tally.failures.push(format!(
                        "seed {seed}: clean flow {key:?} lost observation {want:?}"
                    ));
                }
            }
        }
    }

    tally.seeds += 1;
    tally.packets_in += out.stats.packets_in;
    tally.packets_out += out.stats.packets_out;
    tally.clean_flows += out.stats.clean_flows;
    tally.mutated_flows += out.stats.mutated_flows;
    tally.garbage_flows += out.stats.garbage_flows;
    tally.observations += obs.observations().len() as u64;
    tally.parse_errors += stats.parse_errors;
}

fn report(profile: &str, tally: &Tally) -> bool {
    println!("chaosprobe [{profile}] over {} seeds", tally.seeds);
    println!(
        "  packets      {} in -> {} out",
        tally.packets_in, tally.packets_out
    );
    println!(
        "  flows        {} clean / {} mutated / {} garbage",
        tally.clean_flows, tally.mutated_flows, tally.garbage_flows
    );
    println!(
        "  observer     {} observations, {} classified parse errors",
        tally.observations, tally.parse_errors
    );
    if tally.failures.is_empty() {
        println!("  properties   all hold (no-panic, clean-identity, caps, replay)");
        true
    } else {
        for f in tally.failures.iter().take(10) {
            eprintln!("  FAIL {f}");
        }
        eprintln!("  {} property violation(s)", tally.failures.len());
        false
    }
}

/// Emit the golden SNI vector corpus (`tests/vectors/sni_vectors.txt`):
/// one `kind<TAB>name<TAB>expect<TAB>hex` line per vector, where `expect`
/// is `ok:<host>`, `ok-none`, or `err:<ParseError variant>` as produced by
/// the current parsers. Regenerate with `chaosprobe --gen-vectors` after
/// an intentional parser change and review the diff.
fn gen_vectors() {
    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }
    fn tls_line(name: &str, bytes: &[u8]) {
        let expect = match tls::extract_sni(bytes) {
            Ok(Some(host)) => format!("ok:{host}"),
            Ok(None) => "ok-none".to_string(),
            Err(e) => format!("err:{e:?}"),
        };
        println!("tls\t{name}\t{expect}\t{}", hex(bytes));
    }
    fn quic_line(name: &str, bytes: &[u8]) {
        let expect = match quic::extract_sni_from_quic(bytes) {
            Ok(Some(host)) => format!("ok:{host}"),
            Ok(None) => "ok-none".to_string(),
            Err(e) => format!("err:{e:?}"),
        };
        println!("quic\t{name}\t{expect}\t{}", hex(bytes));
    }

    println!("# Golden SNI extraction vectors.");
    println!("# kind<TAB>name<TAB>expect<TAB>hex-encoded input");
    println!("# expect: ok:<host> | ok-none | err:<ParseError variant>");
    println!("# Regenerate: cargo run --bin chaosprobe -- --gen-vectors");

    let ch = tls::ClientHello::for_hostname("example.com").encode();
    tls_line("basic-sni", &ch);
    tls_line(
        "long-label-sni",
        &tls::ClientHello::for_hostname("very-long-subdomain-label-for-testing.cdn.example.com")
            .encode(),
    );
    tls_line("ech-hidden-sni", &tls::ClientHello::with_ech(64).encode());
    tls_line("empty-input", &[]);
    tls_line("record-header-only", &ch[..5]);
    tls_line("cut-mid-handshake", &ch[..20]);
    tls_line("cut-one-byte-short", &ch[..ch.len() - 1]);

    let mut wrong_type = ch.clone();
    wrong_type[0] = 0x17; // application_data, not handshake
    tls_line("wrong-content-type", &wrong_type);

    let mut bad_version = ch.clone();
    bad_version[1] = 0x02; // SSLv2-era record version
    tls_line("unsupported-record-version", &bad_version);

    let mut not_ch = ch.clone();
    not_ch[5] = 0x02; // handshake type: ServerHello
    tls_line("server-hello-not-client-hello", &not_ch);

    let mut short_record_len = ch.clone();
    let declared = u16::from_be_bytes([ch[3], ch[4]]).saturating_sub(4);
    short_record_len[3..5].copy_from_slice(&declared.to_be_bytes());
    tls_line("record-length-understates-body", &short_record_len);

    let mut overrun = ch.clone();
    overrun[3..5].copy_from_slice(&0x3fffu16.to_be_bytes());
    tls_line("record-length-overruns-buffer", &overrun);

    // Corrupt the hostname bytes in place: 'example.com' -> non-ASCII.
    let mut bad_host = ch.clone();
    if let Some(at) = bad_host.windows(11).position(|w| w == b"example.com") {
        bad_host[at] = 0xff;
    }
    tls_line("non-ascii-hostname", &bad_host);

    // session_id length > 32 violates RFC 8446 (offset: 5-byte record
    // header, 4-byte handshake header, 2-byte version, 32-byte random).
    let mut bad_sid = ch.clone();
    bad_sid[43] = 0xff;
    tls_line("session-id-length-over-32", &bad_sid);

    // Overstate the server_name_list length inside the SNI extension
    // (the list length lives 5 bytes before the hostname: list_len u16,
    // name_type u8, name_len u16, then the name itself).
    let mut bad_list = ch.clone();
    if let Some(at) = bad_list.windows(11).position(|w| w == b"example.com") {
        let list_len = u16::from_be_bytes([bad_list[at - 5], bad_list[at - 4]]);
        bad_list[at - 5..at - 3].copy_from_slice(&(list_len + 40).to_be_bytes());
    }
    tls_line("sni-list-length-overstated", &bad_list);

    let mut trailing = ch.clone();
    trailing.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    tls_line("trailing-bytes-after-record", &trailing);

    let qi = quic::InitialPacket::for_hostname("quic.example.com").encode();
    quic_line("basic-initial", &qi);

    let mut coalesced = qi.clone();
    coalesced.extend((0u8..50).map(|i| i.wrapping_mul(37)));
    quic_line("coalesced-trailing-datagram", &coalesced);

    quic_line("empty-datagram", &[]);
    quic_line("short-header-byte", &[0x40, 1, 2, 3]);
    quic_line("cut-mid-crypto", &qi[..qi.len() / 2]);
    quic_line("first-byte-only", &qi[..1]);

    let mut bad_qver = qi.clone();
    bad_qver[1..5].copy_from_slice(&0xdead_beefu32.to_be_bytes());
    quic_line("unknown-quic-version", &bad_qver);

    let mut huge_dcid = qi.clone();
    huge_dcid[5] = 0xff; // DCID length far beyond the remaining buffer
    quic_line("dcid-length-overrun", &huge_dcid);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };

    if flag("--gen-vectors") {
        gen_vectors();
        return ExitCode::SUCCESS;
    }

    let (seeds, base, profiles): (u64, u64, Vec<bool>) = if flag("--smoke") {
        (16, 0, vec![false, true])
    } else {
        (
            value("--seeds").unwrap_or(200),
            value("--seed-base").unwrap_or(0),
            vec![flag("--aggressive")],
        )
    };

    let mut ok = true;
    for aggressive in profiles {
        let mut tally = Tally::default();
        for seed in base..base + seeds {
            probe_seed(seed, aggressive, &mut tally);
        }
        let profile = if aggressive { "aggressive" } else { "balanced" };
        ok &= report(profile, &tally);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
