//! Statistics micro-benches: the evaluation-side primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hostprof_stats::{paired_t_test, Ccdf, Tsne, TsneConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_ttest(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let a: Vec<f64> = (0..1329).map(|_| rng.gen::<f64>() * 0.004).collect();
    let b: Vec<f64> = (0..1329).map(|_| rng.gen::<f64>() * 0.004).collect();
    c.bench_function("paired_t_test_1329_users", |bch| {
        bch.iter(|| paired_t_test(black_box(&a), black_box(&b)).unwrap().p)
    });
}

fn bench_ccdf(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let sample: Vec<usize> = (0..10_000).map(|_| rng.gen_range(0..5000)).collect();
    c.bench_function("ccdf_build_10k", |b| {
        b.iter(|| Ccdf::from_counts(black_box(sample.iter().copied())).len())
    });
    let ccdf = Ccdf::from_counts(sample);
    c.bench_function("ccdf_query", |b| {
        b.iter(|| ccdf.value_at_fraction(black_box(0.75)))
    });
}

fn bench_tsne(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let points: Vec<f32> = (0..200 * 16).map(|_| rng.gen::<f32>()).collect();
    let mut g = c.benchmark_group("tsne");
    g.sample_size(10);
    g.bench_function("exact_200pts_16d_100iter", |b| {
        b.iter(|| {
            Tsne::new(TsneConfig {
                iterations: 100,
                perplexity: 15.0,
                ..TsneConfig::default()
            })
            .embed(black_box(&points), 16)
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ttest, bench_ccdf, bench_tsne);
criterion_main!(benches);
