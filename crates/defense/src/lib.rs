//! # hostprof-defense
//!
//! Seeded, replayable trace/wire-level defenses against the passive
//! network observer (DESIGN.md §15). Each [`Defense`] is a deterministic
//! transform applied *between* the synthetic world and observer capture:
//! the eavesdropper trains and profiles on exactly what survives the
//! defense, so degradation curves measure the real pipeline end to end.
//!
//! Determinism contract: every per-event decision (decoy counts, decoy
//! hostnames, padding offsets) is a pure function of
//! `(seed, t_ms, client, hostname)` via splitmix64 over an FNV-1a
//! hostname hash — the same stateless scheme `net::synthesize` uses for
//! wire randomness. No RNG state is threaded anywhere, so transforms
//! replay bitwise at any lane count and the naive `oracle::defense`
//! twin can reproduce them from the written spec alone.
//!
//! Identity invariants (property- and golden-enforced from the main
//! crate): `Ech { adoption: 0.0 }`, `Dummy { rate: 0.0 }`,
//! `PadConstant { pad_per_event: 0 }`, `PadAdaptive { intensity: 0.0 }`
//! and `Doh { adoption: 0.0 }` leave the event stream untouched, and
//! `Nat { users_per_ip: 1 }` maps every client to the same source IP as
//! per-client addressing — the defended pipeline at each identity point
//! is bit-equal to the undefended one.

use hostprof_net::synthesize::{Addressing, RequestEvent, TrafficSynthesizer, WireOverride};

/// Resolver hostname DoH-migrated clients leak instead of query names.
pub const DOH_RESOLVER: &str = "doh.defense.example";

/// How many of the catalog's most-popular hostnames constant-rate
/// padding rotates through.
pub const PAD_COVER_PREFIX: usize = 16;

/// Half-width of the popularity-rank neighborhood adaptive padding
/// draws its cover hostnames from.
pub const ADAPTIVE_NEIGHBORHOOD: usize = 8;

/// One trace/wire-level defense at a swept intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Defense {
    /// The `adoption` fraction of sites — most popular first — deploy
    /// ECH: their connections hide the hostname entirely. Site sets are
    /// nested along the sweep, so recovery is monotone by construction.
    Ech {
        /// Fraction of sites (by popularity rank) deploying ECH, 0–1.
        adoption: f64,
    },
    /// Clients inject decoy lookups of real (popularity-skewed) catalog
    /// hostnames at a mean of `rate` decoys per real request.
    Dummy {
        /// Mean decoys injected per real request.
        rate: f64,
    },
    /// Constant-rate padding: every real request is followed by exactly
    /// `pad_per_event` cover connections rotating through the catalog's
    /// most popular hostnames.
    PadConstant {
        /// Cover connections per real request.
        pad_per_event: u32,
    },
    /// Adaptive padding: a mean of `intensity` cover connections per
    /// real request, drawn from the visited host's popularity-rank
    /// neighborhood at exponentially spaced offsets — cover that mimics
    /// the session instead of the global head.
    PadAdaptive {
        /// Mean cover connections per real request.
        intensity: f64,
    },
    /// NAT pool mixing: `users_per_ip` clients collapse into one source
    /// address, blending their sequences at the observer.
    Nat {
        /// Clients per NAT address (1 = identity).
        users_per_ip: u32,
    },
    /// The `adoption` fraction of clients migrate to DoH + ECH: their
    /// lookups travel inside TLS to [`DOH_RESOLVER`] and their page
    /// connections hide the hostname. Client sets are nested along the
    /// sweep.
    Doh {
        /// Fraction of clients migrated, 0–1.
        adoption: f64,
    },
}

impl Defense {
    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Defense::Ech { .. } => "ech",
            Defense::Dummy { .. } => "dummy",
            Defense::PadConstant { .. } => "pad_constant",
            Defense::PadAdaptive { .. } => "pad_adaptive",
            Defense::Nat { .. } => "nat",
            Defense::Doh { .. } => "doh",
        }
    }

    /// The swept intensity as a plain number (fractions stay 0–1).
    pub fn intensity(&self) -> f64 {
        match *self {
            Defense::Ech { adoption } => adoption,
            Defense::Dummy { rate } => rate,
            Defense::PadConstant { pad_per_event } => pad_per_event as f64,
            Defense::PadAdaptive { intensity } => intensity,
            Defense::Nat { users_per_ip } => users_per_ip as f64,
            Defense::Doh { adoption } => adoption,
        }
    }

    /// The same defense at a different point on its sweep axis.
    pub fn at(&self, intensity: f64) -> Defense {
        match self {
            Defense::Ech { .. } => Defense::Ech {
                adoption: intensity,
            },
            Defense::Dummy { .. } => Defense::Dummy { rate: intensity },
            Defense::PadConstant { .. } => Defense::PadConstant {
                pad_per_event: intensity.round().max(0.0) as u32,
            },
            Defense::PadAdaptive { .. } => Defense::PadAdaptive { intensity },
            Defense::Nat { .. } => Defense::Nat {
                users_per_ip: intensity.round().max(1.0) as u32,
            },
            Defense::Doh { .. } => Defense::Doh {
                adoption: intensity,
            },
        }
    }

    /// True at the sweep point where the defense is a no-op.
    pub fn is_identity(&self) -> bool {
        match *self {
            Defense::Ech { adoption } => adoption == 0.0,
            Defense::Dummy { rate } => rate == 0.0,
            Defense::PadConstant { pad_per_event } => pad_per_event == 0,
            Defense::PadAdaptive { intensity } => intensity == 0.0,
            Defense::Nat { users_per_ip } => users_per_ip <= 1,
            Defense::Doh { adoption } => adoption == 0.0,
        }
    }
}

/// The world's hostnames ranked by popularity (descending, host-id
/// ascending on ties) — the shared ranking every defense draws cover
/// names and ECH adoption prefixes from.
#[derive(Debug, Clone)]
pub struct HostCatalog {
    names: Vec<String>,
    /// name → rank, for neighborhood lookups.
    rank: std::collections::HashMap<String, usize>,
}

impl HostCatalog {
    /// Build from `(host_id, name, popularity)` rows in any order.
    pub fn from_hosts<I>(hosts: I) -> Self
    where
        I: IntoIterator<Item = (u32, String, f64)>,
    {
        let mut rows: Vec<(u32, String, f64)> = hosts.into_iter().collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        let names: Vec<String> = rows.into_iter().map(|(_, n, _)| n).collect();
        let rank = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Self { names, rank }
    }

    /// Number of catalog hostnames.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the catalog holds no hostnames.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Hostname at popularity rank `i` (0 = most popular).
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Popularity rank of a hostname, if it is in the catalog.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.rank.get(name).copied()
    }
}

/// splitmix64 — the shared stateless mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64 over a hostname.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Map a hash to the unit interval, matching `net::synthesize`'s
/// threshold-draw convention (53 mantissa bits, always < 1.0).
pub fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Defense`] bound to a catalog and seed: the deterministic
/// transform the bridge applies between trace and capture.
#[derive(Debug, Clone)]
pub struct DefensePlan {
    defense: Defense,
    catalog: HostCatalog,
    seed: u64,
    /// ECH adoption prefix length: catalog ranks `< ech_cut` are hidden.
    ech_cut: usize,
}

impl DefensePlan {
    /// Bind a defense to a catalog and seed.
    pub fn new(defense: Defense, catalog: HostCatalog, seed: u64) -> Self {
        let ech_cut = match defense {
            Defense::Ech { adoption } => {
                let n = catalog.len() as f64;
                (adoption.clamp(0.0, 1.0) * n).round() as usize
            }
            _ => 0,
        };
        Self {
            defense,
            catalog,
            seed,
            ech_cut,
        }
    }

    /// The bound defense.
    pub fn defense(&self) -> Defense {
        self.defense
    }

    /// The shared popularity catalog.
    pub fn catalog(&self) -> &HostCatalog {
        &self.catalog
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-event hash: the root of every decoy/padding draw. Keyed by
    /// the plan seed so different defense runs decorrelate, and by the
    /// same `(t, client, hostname)` fields the wire layer hashes so the
    /// oracle twin can recompute it from the event alone.
    fn event_hash(&self, t_ms: u64, client: u32, hostname: &str) -> u64 {
        splitmix64(
            fnv1a(hostname.as_bytes())
                ^ splitmix64(t_ms)
                ^ (client as u64).wrapping_mul(0x517c_c1b7_2722_0a95)
                ^ splitmix64(self.seed ^ 0xdefe_45e0),
        )
    }

    /// Whether this hostname's site has deployed ECH under the plan.
    pub fn ech_hidden(&self, hostname: &str) -> bool {
        matches!(self.defense, Defense::Ech { .. })
            && self
                .catalog
                .rank_of(hostname)
                .is_some_and(|r| r < self.ech_cut)
    }

    /// Whether this client has migrated to DoH under the plan.
    pub fn doh_migrated(&self, client: u32) -> bool {
        let Defense::Doh { adoption } = self.defense else {
            return false;
        };
        let h =
            splitmix64(self.seed ^ 0xd0e0 ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        unit(h) < adoption
    }

    /// The synthesizer the defended capture runs with: NAT mixing swaps
    /// the addressing; every other defense leaves the base untouched.
    pub fn synthesizer(&self, base: &TrafficSynthesizer) -> TrafficSynthesizer {
        let mut s = base.clone();
        if let Defense::Nat { users_per_ip } = self.defense {
            let base_ip = match s.addressing {
                Addressing::PerClient { base_ip } => base_ip,
                Addressing::Nat { base_ip, .. } => base_ip,
            };
            s.addressing = Addressing::Nat {
                base_ip,
                clients_per_ip: users_per_ip.max(1),
            };
        }
        s
    }

    /// Per-event wire override: ECH sites hide their hostname; DoH
    /// clients tunnel lookups to the resolver and hide page hostnames.
    pub fn wire_override(&self, client: u32, hostname: &str) -> WireOverride<'_> {
        if self.ech_hidden(hostname) {
            WireOverride {
                force_ech: true,
                ..Default::default()
            }
        } else if self.doh_migrated(client) {
            WireOverride {
                force_ech: true,
                force_dns: true,
                doh_resolver: Some(DOH_RESOLVER),
            }
        } else {
            WireOverride::default()
        }
    }

    /// Decoy/cover events injected after one real event. Offsets are
    /// strictly forward in time so padding can never reorder or shadow
    /// the real observation it covers.
    pub fn injected(&self, t_ms: u64, client: u32, hostname: &str) -> Vec<RequestEvent> {
        let mut out = Vec::new();
        self.injected_into(t_ms, client, hostname, &mut out);
        out
    }

    fn injected_into(&self, t_ms: u64, client: u32, hostname: &str, out: &mut Vec<RequestEvent>) {
        let n = self.catalog.len();
        if n == 0 {
            return;
        }
        let eh = self.event_hash(t_ms, client, hostname);
        match self.defense {
            Defense::Dummy { rate } => {
                let rate = rate.max(0.0);
                let k = rate.floor() as usize
                    + usize::from(unit(splitmix64(eh ^ 0x00d0)) < rate.fract());
                for i in 0..k {
                    // Popularity-skewed draw: u² biases toward the head,
                    // like real cover extensions recommend.
                    let u = unit(splitmix64(eh ^ (0xd117 + i as u64)));
                    let idx = ((u * u * n as f64) as usize).min(n - 1);
                    out.push(RequestEvent {
                        t_ms: t_ms + 7 + 13 * i as u64,
                        client,
                        hostname: self.catalog.name(idx).to_string(),
                    });
                }
            }
            Defense::PadConstant { pad_per_event } => {
                let prefix = PAD_COVER_PREFIX.min(n);
                for i in 0..pad_per_event as usize {
                    let idx = ((eh as usize).wrapping_add(i)) % prefix;
                    out.push(RequestEvent {
                        t_ms: t_ms + 3 + 5 * i as u64,
                        client,
                        hostname: self.catalog.name(idx).to_string(),
                    });
                }
            }
            Defense::PadAdaptive { intensity } => {
                let intensity = intensity.max(0.0);
                let k = intensity.floor() as usize
                    + usize::from(unit(splitmix64(eh ^ 0x0ada)) < intensity.fract());
                let anchor = self.catalog.rank_of(hostname).unwrap_or_else(|| {
                    let u = unit(splitmix64(eh ^ 0x0a0c));
                    ((u * u * n as f64) as usize).min(n - 1)
                });
                let width = 2 * ADAPTIVE_NEIGHBORHOOD + 1;
                for i in 0..k {
                    let d = (splitmix64(eh ^ (0xada0 + i as u64)) % width as u64) as i64
                        - ADAPTIVE_NEIGHBORHOOD as i64;
                    let idx = (anchor as i64 + d).clamp(0, n as i64 - 1) as usize;
                    out.push(RequestEvent {
                        // Exponentially spaced cover, mimicking burst
                        // tails rather than a fixed cadence.
                        t_ms: t_ms + (1u64 << i.min(20)) * 250,
                        client,
                        hostname: self.catalog.name(idx).to_string(),
                    });
                }
            }
            Defense::Ech { .. } | Defense::Nat { .. } | Defense::Doh { .. } => {}
        }
    }

    /// Apply the trace-level half of the defense: the real events plus
    /// any injected cover, in global time order (stable sort, so
    /// same-millisecond events keep their trace order and identity
    /// points reproduce the input bit for bit).
    pub fn transform(&self, events: &[RequestEvent]) -> Vec<RequestEvent> {
        let mut out: Vec<RequestEvent> = Vec::with_capacity(events.len());
        for ev in events {
            out.push(ev.clone());
            self.injected_into(ev.t_ms, ev.client, &ev.hostname, &mut out);
        }
        out.sort_by_key(|e| e.t_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> HostCatalog {
        HostCatalog::from_hosts((0..n).map(|i| {
            (
                i as u32,
                format!("host{i}.test"),
                1.0 / (i as f64 + 1.0), // rank i = host i
            )
        }))
    }

    fn events() -> Vec<RequestEvent> {
        (0..50)
            .map(|i| RequestEvent {
                t_ms: i * 100,
                client: (i % 5) as u32,
                hostname: format!("host{}.test", i % 20),
            })
            .collect()
    }

    #[test]
    fn catalog_ranks_by_popularity_with_id_tiebreak() {
        let c = HostCatalog::from_hosts(vec![
            (2, "b.test".to_string(), 0.5),
            (1, "a.test".to_string(), 0.5),
            (0, "c.test".to_string(), 0.9),
        ]);
        assert_eq!(c.name(0), "c.test");
        assert_eq!(c.name(1), "a.test"); // id 1 before id 2 on the tie
        assert_eq!(c.name(2), "b.test");
        assert_eq!(c.rank_of("b.test"), Some(2));
    }

    #[test]
    fn identity_points_leave_events_untouched() {
        let evs = events();
        for d in [
            Defense::Ech { adoption: 0.0 },
            Defense::Dummy { rate: 0.0 },
            Defense::PadConstant { pad_per_event: 0 },
            Defense::PadAdaptive { intensity: 0.0 },
            Defense::Doh { adoption: 0.0 },
            Defense::Nat { users_per_ip: 1 },
        ] {
            assert!(d.is_identity(), "{d:?}");
            let plan = DefensePlan::new(d, catalog(20), 7);
            assert_eq!(plan.transform(&evs), evs, "{d:?}");
            for ev in &evs {
                assert_eq!(
                    plan.wire_override(ev.client, &ev.hostname),
                    WireOverride::default(),
                    "{d:?}"
                );
            }
        }
    }

    #[test]
    fn nat_pool_of_one_matches_per_client_addressing() {
        let base = TrafficSynthesizer::default();
        let plan = DefensePlan::new(Defense::Nat { users_per_ip: 1 }, catalog(4), 1);
        let defended = plan.synthesizer(&base);
        for c in 0..64 {
            assert_eq!(
                base.addressing.client_ip(c),
                defended.addressing.client_ip(c)
            );
        }
    }

    #[test]
    fn ech_adoption_sets_are_nested_and_cover_the_catalog_at_full() {
        let c = catalog(40);
        let mut prev: Vec<bool> = vec![false; 40];
        for step in 0..=10 {
            let plan = DefensePlan::new(
                Defense::Ech {
                    adoption: step as f64 / 10.0,
                },
                c.clone(),
                1,
            );
            let now: Vec<bool> = (0..40)
                .map(|i| plan.ech_hidden(&format!("host{i}.test")))
                .collect();
            for i in 0..40 {
                assert!(!prev[i] || now[i], "rank {i} left the set at {step}");
            }
            prev = now;
        }
        assert!(prev.iter().all(|&h| h), "full adoption hides every site");
    }

    #[test]
    fn doh_migration_sets_are_nested_in_adoption() {
        let c = catalog(8);
        let mut prev: Vec<bool> = vec![false; 100];
        for step in 0..=10 {
            let plan = DefensePlan::new(
                Defense::Doh {
                    adoption: step as f64 / 10.0,
                },
                c.clone(),
                3,
            );
            let now: Vec<bool> = (0..100).map(|cl| plan.doh_migrated(cl)).collect();
            for (i, (&p, &n)) in prev.iter().zip(&now).enumerate() {
                assert!(!p || n, "client {i} left the set at {step}");
            }
            prev = now;
        }
        assert!(prev.iter().all(|&m| m), "full adoption migrates everyone");
    }

    #[test]
    fn padding_keeps_every_real_event_as_a_subsequence() {
        let evs = events();
        for d in [
            Defense::Dummy { rate: 1.7 },
            Defense::PadConstant { pad_per_event: 3 },
            Defense::PadAdaptive { intensity: 2.3 },
        ] {
            let plan = DefensePlan::new(d, catalog(20), 11);
            let out = plan.transform(&evs);
            assert!(out.len() > evs.len(), "{d:?} injected nothing");
            // Real events survive, in order, as a subsequence.
            let mut it = out.iter();
            for ev in &evs {
                assert!(it.any(|o| o == ev), "{d:?} dropped {ev:?}");
            }
        }
    }

    #[test]
    fn transforms_are_deterministic_and_time_sorted() {
        let evs = events();
        let plan = DefensePlan::new(Defense::Dummy { rate: 2.0 }, catalog(20), 5);
        let a = plan.transform(&evs);
        let b = plan.transform(&evs);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn cover_hostnames_come_from_the_catalog() {
        let evs = events();
        let c = catalog(20);
        for d in [
            Defense::Dummy { rate: 2.0 },
            Defense::PadConstant { pad_per_event: 2 },
            Defense::PadAdaptive { intensity: 2.0 },
        ] {
            let plan = DefensePlan::new(d, c.clone(), 9);
            for ev in plan.transform(&evs) {
                assert!(
                    plan.catalog().rank_of(&ev.hostname).is_some(),
                    "{d:?} emitted out-of-world hostname {}",
                    ev.hostname
                );
            }
        }
    }
}
