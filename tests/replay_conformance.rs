//! End-to-end replay conformance: the committed golden snapshots under
//! `tests/golden/` must be reproduced **byte-identically** across the
//! full execution matrix — {1, 4} profiling threads × {scalar, simd}
//! kernels × {static, balanced} sharding — on each seed.
//!
//! The determinism contract making this possible is spelled out in
//! `src/replay.rs` (and DESIGN.md §10): the replay pins skipgram to
//! `dim = 3, threads = 1`, where the SIMD kernels take their scalar
//! tail path from element 0 and sharding degenerates to sequential
//! epoch order, while batch profiling consumes no randomness so the
//! thread count cannot reorder float accumulation.
//!
//! Regenerate goldens after an *intentional* pipeline change with:
//! `cargo run --release --bin hostprof -- replay --golden tests/golden --seed S --bless`

use hostprof::embed::{KernelChoice, Sharding};
use hostprof::replay::{
    compare_defense_snapshots, compare_snapshots, compare_update_snapshots, defense_golden_path,
    from_defense_golden_json, from_golden_json, from_update_golden_json, golden_path,
    run_defense_replay, run_replay, run_update_replay, to_defense_golden_json, to_golden_json,
    to_update_golden_json, update_golden_path, ReplayOptions,
};
use std::path::Path;

const SEEDS: [u64; 3] = [1, 2, 3];

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn read_golden(seed: u64) -> String {
    let path = golden_path(golden_dir(), seed);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} — bless with `hostprof replay --golden tests/golden --seed {seed} --bless`",
            path.display()
        )
    })
}

#[test]
fn replay_matches_committed_goldens_across_the_full_matrix() {
    for seed in SEEDS {
        let golden = read_golden(seed);
        let expected = from_golden_json(&golden).expect("golden parses");
        for threads in [1usize, 4] {
            for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
                for sharding in [Sharding::Static, Sharding::Balanced] {
                    let opts = ReplayOptions {
                        seed,
                        profile_threads: threads,
                        kernel,
                        sharding,
                        perturb_embedding: None,
                    };
                    let snapshot = run_replay(&opts).expect("replay runs");
                    let diffs = compare_snapshots(&expected, &snapshot);
                    assert!(
                        diffs.is_empty(),
                        "seed {seed}, threads {threads}, {kernel:?}/{sharding:?} diverged:\n{}",
                        diffs.join("\n")
                    );
                    // Byte-identity is stronger than structural equality:
                    // the serialized form must match the committed file
                    // exactly, proving float formatting is stable too.
                    assert_eq!(
                        to_golden_json(&snapshot).expect("serializes"),
                        golden,
                        "seed {seed}, threads {threads}, {kernel:?}/{sharding:?}: \
                         snapshot JSON differs from committed golden bytes"
                    );
                }
            }
        }
    }
}

fn read_update_golden(seed: u64) -> String {
    let path = update_golden_path(golden_dir(), seed);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} — bless with `hostprof replay --golden tests/golden \
             --seed {seed} --update --bless`",
            path.display()
        )
    })
}

#[test]
fn update_schedule_matches_committed_goldens_across_lanes_and_kernels() {
    // ISSUE acceptance: the {train → serve → incremental-update → serve}
    // schedule replays byte-identically across {1, 4} serving lanes ×
    // {scalar, simd} kernels on each committed seed. Lane count may not
    // shift window content (streaming-equivalence contract) and the
    // kernels share the scalar tail path at the replay's dim = 3.
    for seed in SEEDS {
        let golden = read_update_golden(seed);
        let expected = from_update_golden_json(&golden).expect("update golden parses");
        for lanes in [1usize, 4] {
            for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
                let opts = ReplayOptions {
                    seed,
                    profile_threads: 1,
                    kernel,
                    sharding: Sharding::Static,
                    perturb_embedding: None,
                };
                let snapshot = run_update_replay(&opts, lanes).expect("update replay runs");
                let diffs = compare_update_snapshots(&expected, &snapshot);
                assert!(
                    diffs.is_empty(),
                    "seed {seed}, lanes {lanes}, {kernel:?} diverged:\n{}",
                    diffs.join("\n")
                );
                assert_eq!(
                    to_update_golden_json(&snapshot).expect("serializes"),
                    golden,
                    "seed {seed}, lanes {lanes}, {kernel:?}: snapshot JSON differs \
                     from committed golden bytes"
                );
            }
        }
    }
}

#[test]
fn update_schedule_goldens_are_seed_sensitive_and_show_growth() {
    let g1 = from_update_golden_json(&read_update_golden(1)).expect("parses");
    let g2 = from_update_golden_json(&read_update_golden(2)).expect("parses");
    assert_ne!(g1.stages.base_model, g2.stages.base_model);
    assert_ne!(g1.stages.serve_post, g2.stages.serve_post);
    for g in [&g1, &g2] {
        assert!(
            g.appended_tokens > 0,
            "seed {}: day-1 harvest grew nothing — the schedule has no signal",
            g.seed
        );
        assert_eq!(g.grown_vocab, g.base_vocab + g.appended_tokens);
        assert_ne!(
            g.stages.base_model, g.stages.grown_model,
            "update left the model digest unchanged"
        );
    }
}

fn read_defense_golden(seed: u64) -> String {
    let path = defense_golden_path(golden_dir(), seed);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} — bless with `hostprof replay --golden tests/golden \
             --seed {seed} --defense --bless`",
            path.display()
        )
    })
}

#[test]
fn defense_schedule_matches_committed_goldens_across_lanes_and_kernels() {
    // ISSUE acceptance: defended replay schedules are byte-identical
    // across {1, 4} serving lanes × {scalar, simd} kernels on each
    // committed seed. Decoy packets share their client's IP — and
    // therefore its lane — so lane count cannot reorder any per-client
    // window, defended or not.
    for seed in SEEDS {
        let golden = read_defense_golden(seed);
        let expected = from_defense_golden_json(&golden).expect("defense golden parses");
        for lanes in [1usize, 4] {
            for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
                let opts = ReplayOptions {
                    seed,
                    profile_threads: 1,
                    kernel,
                    sharding: Sharding::Static,
                    perturb_embedding: None,
                };
                let snapshot = run_defense_replay(&opts, lanes).expect("defense replay runs");
                let diffs = compare_defense_snapshots(&expected, &snapshot);
                assert!(
                    diffs.is_empty(),
                    "seed {seed}, lanes {lanes}, {kernel:?} diverged:\n{}",
                    diffs.join("\n")
                );
                assert_eq!(
                    to_defense_golden_json(&snapshot).expect("serializes"),
                    golden,
                    "seed {seed}, lanes {lanes}, {kernel:?}: snapshot JSON differs \
                     from committed golden bytes"
                );
            }
        }
    }
}

#[test]
fn defense_schedule_goldens_pin_identity_and_degradation() {
    for seed in SEEDS {
        let g = from_defense_golden_json(&read_defense_golden(seed)).expect("parses");
        let baseline = &g.cases[0];
        assert_eq!(baseline.name, "baseline", "seed {seed}");
        let identity = &g.cases[1];
        assert_eq!(identity.name, "identity_ech0", "seed {seed}");
        // The committed bytes themselves must witness the identity
        // invariant: the defended path at ech@0 is the undefended
        // pipeline, digest for digest.
        assert_eq!(baseline.observed, identity.observed, "seed {seed}");
        assert_eq!(baseline.model, identity.model, "seed {seed}");
        assert_eq!(baseline.serve, identity.serve, "seed {seed}");
        // And every real defense must visibly move the observed stage.
        for case in &g.cases[2..] {
            assert_ne!(
                case.observed, baseline.observed,
                "seed {seed}: case {} is a silent no-op",
                case.name
            );
        }
    }
}

#[test]
fn defense_schedule_goldens_are_seed_sensitive() {
    let g1 = from_defense_golden_json(&read_defense_golden(1)).expect("parses");
    let g2 = from_defense_golden_json(&read_defense_golden(2)).expect("parses");
    for (c1, c2) in g1.cases.iter().zip(&g2.cases) {
        assert_eq!(c1.name, c2.name);
        assert_ne!(
            c1.observed, c2.observed,
            "case {}: seed did not move the observed digest",
            c1.name
        );
    }
}

#[test]
fn replay_snapshots_are_seed_sensitive() {
    let golden_1 = from_golden_json(&read_golden(1)).expect("golden parses");
    let golden_2 = from_golden_json(&read_golden(2)).expect("golden parses");
    assert_ne!(golden_1.stages.trace, golden_2.stages.trace);
    assert_ne!(golden_1.stages.model, golden_2.stages.model);
    assert_ne!(golden_1.stages.ctr, golden_2.stages.ctr);
}

#[test]
fn single_weight_perturbation_fails_with_model_stage_attribution() {
    // ISSUE acceptance: nudging one embedding weight by 1e-3 must fail
    // conformance, and the first reported diff must finger the model
    // stage (upstream digests stay clean).
    let expected = from_golden_json(&read_golden(1)).expect("golden parses");
    let mut opts = ReplayOptions::for_seed(1);
    opts.perturb_embedding = Some((5, 1e-3));
    let snapshot = run_replay(&opts).expect("replay runs");
    let diffs = compare_snapshots(&expected, &snapshot);
    assert!(!diffs.is_empty(), "perturbation went undetected");
    assert!(
        diffs[0].starts_with("stage model:"),
        "first diff should attribute the model stage, got: {}",
        diffs[0]
    );
    assert_eq!(expected.stages.trace, snapshot.stages.trace);
    assert_eq!(expected.stages.observed, snapshot.stages.observed);
    assert_eq!(expected.stages.sessions, snapshot.stages.sessions);
    assert_ne!(expected.stages.model, snapshot.stages.model);
}
