//! Table-driven golden vectors for SNI extraction.
//!
//! `tests/vectors/sni_vectors.txt` holds hex-encoded ClientHello records
//! and QUIC Initial datagrams — valid, mutated and truncated — together
//! with the exact outcome each must produce: `ok:<host>`, `ok-none`, or
//! `err:<ParseError variant>`. Any parser change that shifts an error from
//! one taxonomy bucket to another fails here with the vector's name.
//!
//! Regenerate after an *intentional* parser change with
//! `cargo run --bin chaosprobe -- --gen-vectors > tests/vectors/sni_vectors.txt`
//! and review the diff vector by vector.

use hostprof::net::{quic, tls};

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex digit"))
        .collect()
}

/// Normalize an extractor result into the corpus' expect-token syntax.
fn outcome<E: std::fmt::Debug>(r: Result<Option<String>, E>) -> String {
    match r {
        Ok(Some(host)) => format!("ok:{host}"),
        Ok(None) => "ok-none".to_string(),
        Err(e) => format!("err:{e:?}"),
    }
}

#[test]
fn every_golden_vector_produces_its_exact_outcome() {
    let corpus = include_str!("vectors/sni_vectors.txt");
    let mut checked = 0usize;
    for (lineno, line) in corpus.lines().enumerate() {
        // Only strip line endings: an empty-input vector legitimately ends
        // with a tab and an empty hex field, which `trim` would destroy.
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(
            fields.len(),
            4,
            "line {}: expected kind\\tname\\texpect\\thex",
            lineno + 1
        );
        let (kind, name, expect, hex) = (fields[0], fields[1], fields[2], fields[3]);
        let bytes = unhex(hex);
        let got = match kind {
            "tls" => outcome(tls::extract_sni(&bytes).map(|o| o.map(str::to_string))),
            "quic" => outcome(quic::extract_sni_from_quic(&bytes)),
            other => panic!("line {}: unknown vector kind {other:?}", lineno + 1),
        };
        assert_eq!(got, expect, "vector {name:?} (line {})", lineno + 1);
        checked += 1;
    }
    assert!(checked >= 20, "corpus shrank to {checked} vectors");
}

/// The corpus must exercise both success shapes and a spread of error
/// variants — a corpus of 20 `Truncated` vectors would satisfy the count
/// but not the taxonomy.
#[test]
fn corpus_covers_success_hidden_and_multiple_error_variants() {
    let corpus = include_str!("vectors/sni_vectors.txt");
    let expects: Vec<&str> = corpus
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| l.split('\t').nth(2).expect("expect field"))
        .collect();
    assert!(expects.iter().any(|e| e.starts_with("ok:")));
    assert!(expects.contains(&"ok-none"));
    let variants: std::collections::HashSet<&str> = expects
        .iter()
        .filter(|e| e.starts_with("err:"))
        .copied()
        .collect();
    assert!(
        variants.len() >= 5,
        "only {} distinct error variants covered: {variants:?}",
        variants.len()
    );
}
