//! The `--scale large` tier: a 10⁶-user / 10⁵-hostname world generated,
//! stored, trained and profiled **end to end in one process** through the
//! columnar streaming path (DESIGN.md §13).
//!
//! The point of the run is the memory story, not just throughput: traces
//! are generated lane-by-lane into the structure-of-arrays store
//! (12 bytes/observation + one interned hostname table), the SKIPGRAM
//! corpus and the day-end sessions borrow `&str` straight out of that
//! table, and the committed `results/bench_large.json` records the
//! kernel's own `VmHWM` high-water mark as proof.
//!
//! Thread-scaling curves run for {1, 2, 4, 8} profiler threads but only
//! the counts this machine actually has; missing points are *recorded as
//! gated* (`thread_curve_gated`, `skipped_thread_counts`) rather than
//! faked by oversubscription.
//!
//! ```text
//! bench_large [--users N] [--smoke] [--max-rss-mb N] [--out PATH]
//! ```
//!
//! `--smoke` is the CI preset: the same large world and code path at
//! 10⁴ users, a few seconds instead of minutes. `--max-rss-mb` turns the
//! recorded peak RSS into a hard gate (non-zero exit on breach).

use hostprof::scenario::ScenarioConfig;
use hostprof_bench::{
    header, hw_threads, peak_rss_kb, row, write_results_stamped, write_stamped_at,
};
use hostprof_core::SessionSource;
use hostprof_synth::trace::DAY_MS;
use hostprof_synth::{generate_columnar, Population, PopulationConfig, World};
use serde::Serialize;
use std::time::Instant;

/// The thread counts the tier's scaling curve wants (DESIGN.md §13).
const CURVE_THREADS: &[usize] = &[1, 2, 4, 8];

#[derive(Serialize)]
struct GenerationPhase {
    seconds: f64,
    events: usize,
    events_per_sec: f64,
    /// Structure-of-arrays bytes actually held (columns + interner).
    columnar_bytes: usize,
    bytes_per_event: f64,
    interned_hosts: usize,
    interned_table_bytes: usize,
}

#[derive(Serialize)]
struct TrainPhase {
    day: u32,
    sequences: usize,
    tokens: usize,
    vocabulary: usize,
    dim: usize,
    seconds: f64,
    tokens_per_sec: f64,
}

#[derive(Serialize)]
struct CurvePoint {
    threads: usize,
    seconds: f64,
    sessions_per_sec: f64,
    speedup_vs_1t: f64,
}

#[derive(Serialize)]
struct ProfilePhase {
    day: u32,
    sessions: usize,
    profiles_emitted: usize,
    index: String,
    n_neighbors: usize,
    curve: Vec<CurvePoint>,
    /// True when this machine could not run every requested thread count.
    thread_curve_gated: bool,
    skipped_thread_counts: Vec<usize>,
}

#[derive(Serialize)]
struct BenchLargeResults {
    scale: String,
    smoke: bool,
    users: usize,
    hosts: usize,
    days: u32,
    hardware_threads: usize,
    generation: GenerationPhase,
    train: TrainPhase,
    profile: ProfilePhase,
    /// Headline: best sessions/sec over the thread curve.
    sessions_per_sec: f64,
    peak_rss_kb: u64,
    rss_gate_mb: Option<u64>,
    rss_gate_ok: bool,
}

struct Args {
    users: Option<usize>,
    smoke: bool,
    max_rss_mb: Option<u64>,
    out: Option<String>,
}

const USAGE: &str = "usage: bench_large [--users N] [--smoke] [--max-rss-mb N] [--out PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        users: None,
        smoke: false,
        max_rss_mb: None,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--users" => {
                args.users = Some(
                    value(&mut i, "--users")?
                        .parse()
                        .map_err(|e| format!("--users: {e}\n{USAGE}"))?,
                )
            }
            "--max-rss-mb" => {
                args.max_rss_mb = Some(
                    value(&mut i, "--max-rss-mb")?
                        .parse()
                        .map_err(|e| format!("--max-rss-mb: {e}\n{USAGE}"))?,
                )
            }
            "--out" => args.out = Some(value(&mut i, "--out")?),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_large: {e}");
            std::process::exit(2);
        }
    };

    // Always the large world/trace shape; --smoke and --users only scale
    // the population, so CI exercises the identical code path.
    let mut cfg = ScenarioConfig::large();
    if args.smoke {
        cfg.population.num_users = 10_000;
    }
    if let Some(users) = args.users {
        cfg.population.num_users = users;
    }
    let hardware = hw_threads();

    header("large tier: columnar million-user world");
    row("users", cfg.population.num_users);
    row("days", cfg.trace.days);
    row("hardware threads", hardware);

    let world = World::generate(&cfg.world);
    let population = Population::generate(
        &world,
        &PopulationConfig {
            ..cfg.population.clone()
        },
    );
    row("hosts", world.num_hosts());

    // Phase 1: streaming generation straight into the columnar store. No
    // `Vec<Request>` of the whole world ever exists.
    let t = Instant::now();
    let columns = generate_columnar(&world, &population, &cfg.trace);
    let gen_seconds = t.elapsed().as_secs_f64();
    let events = columns.num_events();
    let columnar_bytes = columns.heap_bytes();
    let generation = GenerationPhase {
        seconds: gen_seconds,
        events,
        events_per_sec: events as f64 / gen_seconds.max(1e-9),
        columnar_bytes,
        bytes_per_event: columnar_bytes as f64 / events.max(1) as f64,
        interned_hosts: columns.interner().len(),
        interned_table_bytes: columns.interner().heap_bytes(),
    };
    row(
        "generated",
        format!(
            "{events} events in {gen_seconds:.1} s ({:.0}/s)",
            generation.events_per_sec
        ),
    );
    row(
        "columnar store",
        format!(
            "{:.1} MB ({:.1} B/event), {} interned hosts",
            columnar_bytes as f64 / 1e6,
            generation.bytes_per_event,
            generation.interned_hosts
        ),
    );
    row("rss after generation", format!("{} kB", peak_rss_kb()));

    // Phase 2: train day 0. Sequences borrow hostnames from the interner —
    // the corpus is pointers, not string copies.
    let source = SessionSource::new(&columns, cfg.pipeline.session_window_ms(), DAY_MS);
    let pipeline = hostprof_core::Pipeline::new(cfg.pipeline.clone(), world.blocklist().clone());
    let t = Instant::now();
    let sequences = source.train_sequences(0);
    let tokens: usize = sequences.iter().map(Vec::len).sum();
    let embeddings = match pipeline.train_model(&sequences) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_large: training failed: {e}");
            std::process::exit(1);
        }
    };
    let train_seconds = t.elapsed().as_secs_f64();
    let train = TrainPhase {
        day: 0,
        sequences: sequences.len(),
        tokens,
        vocabulary: embeddings.len(),
        dim: embeddings.dim(),
        seconds: train_seconds,
        tokens_per_sec: tokens as f64 / train_seconds.max(1e-9),
    };
    drop(sequences);
    row(
        "trained",
        format!(
            "{} tokens -> {} vocab in {train_seconds:.1} s",
            train.tokens, train.vocabulary
        ),
    );
    row("rss after training", format!("{} kB", peak_rss_kb()));

    // Phase 3: day-1 sessions through the batch profiler, once per thread
    // count this machine can honestly run.
    let blocklist = pipeline.blocklist();
    let t = Instant::now();
    let day_sessions = source.day_sessions(1, Some(blocklist));
    let extract_seconds = t.elapsed().as_secs_f64();
    let sessions: Vec<_> = day_sessions.into_iter().map(|(_, s)| s).collect();
    row(
        "day-1 sessions",
        format!("{} extracted in {extract_seconds:.1} s", sessions.len()),
    );
    row("rss after sessions", format!("{} kB", peak_rss_kb()));
    let ontology = world.ontology();

    let runnable: Vec<usize> = CURVE_THREADS
        .iter()
        .copied()
        .filter(|&n| n <= hardware)
        .collect();
    let skipped: Vec<usize> = CURVE_THREADS
        .iter()
        .copied()
        .filter(|&n| n > hardware)
        .collect();
    // Profiles stream through in bounded chunks, exactly like the serving
    // engine's per-tick reports: a full-corpus `Vec<SessionProfile>` of
    // 628k sessions × ~8k touched categories each would dwarf the columnar
    // store itself (observed ~30 GB retained). The bench's memory claim is
    // about the *pipeline*, so emit, count, drop.
    const PROFILE_CHUNK: usize = 4096;
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut profiles_emitted = 0usize;
    for &threads in &runnable {
        let profiler = pipeline.batch_profiler(&embeddings, ontology, threads);
        let t = Instant::now();
        profiles_emitted = sessions
            .chunks(PROFILE_CHUNK)
            .map(|chunk| profiler.profile_sessions(chunk).iter().flatten().count())
            .sum();
        let seconds = t.elapsed().as_secs_f64();
        let rate = sessions.len() as f64 / seconds.max(1e-9);
        let base = curve
            .first()
            .map_or(rate, |c: &CurvePoint| c.sessions_per_sec);
        row(
            &format!("profile x{threads} threads"),
            format!("{rate:.0} sessions/s ({:.2}x)", rate / base),
        );
        curve.push(CurvePoint {
            threads,
            seconds,
            sessions_per_sec: rate,
            speedup_vs_1t: rate / base,
        });
    }
    let profile = ProfilePhase {
        day: 1,
        sessions: sessions.len(),
        profiles_emitted,
        index: pipeline.config().profiler.index.kind().to_string(),
        n_neighbors: pipeline.config().profiler.n_neighbors,
        curve,
        thread_curve_gated: !skipped.is_empty(),
        skipped_thread_counts: skipped.clone(),
    };
    if profile.thread_curve_gated {
        row(
            "thread curve gated",
            format!("{skipped:?} exceed {hardware} hardware thread(s)"),
        );
    }

    let best_rate = profile
        .curve
        .iter()
        .map(|c| c.sessions_per_sec)
        .fold(0.0f64, f64::max);
    let rss_kb = peak_rss_kb();
    let rss_gate_ok = args.max_rss_mb.is_none_or(|mb| rss_kb <= mb * 1024);
    row("peak RSS", format!("{rss_kb} kB"));
    if let Some(mb) = args.max_rss_mb {
        row(
            "RSS gate",
            format!("{mb} MB: {}", if rss_gate_ok { "ok" } else { "BREACHED" }),
        );
    }

    let results = BenchLargeResults {
        scale: "large".to_string(),
        smoke: args.smoke,
        users: cfg.population.num_users,
        hosts: world.num_hosts(),
        days: cfg.trace.days,
        hardware_threads: hardware,
        generation,
        train,
        profile,
        sessions_per_sec: best_rate,
        peak_rss_kb: rss_kb,
        rss_gate_mb: args.max_rss_mb,
        rss_gate_ok,
    };
    let headline = format!(
        "{} users, {} events, {best_rate:.0} sessions/s, peak RSS {:.1} GB",
        results.users,
        results.generation.events,
        rss_kb as f64 / 1e6
    );
    match &args.out {
        Some(path) => {
            write_stamped_at(std::path::Path::new(path), &results, &headline).unwrap_or_else(|e| {
                eprintln!("bench_large: could not write {path}: {e}");
                std::process::exit(1);
            });
            println!("\n[results written to {path}]");
        }
        None => write_results_stamped("bench_large", &results, &headline),
    }
    if !rss_gate_ok {
        std::process::exit(1);
    }
}
