//! The paper's headline experiment, end to end: eavesdropper ads vs
//! ad-network ads, compared by click-through rate.
//!
//! Runs a shortened version of the Section 5/6 deployment — daily
//! retraining, 10-minute extension reports, 20-minute profiling windows,
//! size-matched ad replacement, ground-truth clicks — and prints the
//! Section 6.4 comparison with a paired t-test.
//!
//! ```text
//! cargo run --release --example ad_campaign
//! ```

use hostprof::ads::{CtrExperiment, ExperimentConfig};
use hostprof::scenario::{Scenario, ScenarioConfig};
use hostprof::stats::paired_t_test;
use hostprof::synth::{PopulationConfig, TraceConfig, WorldConfig};

fn main() {
    println!("hostprof ad_campaign — the CTR experiment (shortened)\n");

    // A week-long campaign with 100 users; the full-scale version lives in
    // `cargo run -p hostprof-bench --bin ctr_experiment`.
    let cfg = ScenarioConfig {
        world: WorldConfig {
            num_sites: 800,
            num_cdns: 600,
            num_apis: 900,
            num_trackers: 180,
            ..WorldConfig::default()
        },
        population: PopulationConfig {
            num_users: 150,
            ..PopulationConfig::default()
        },
        trace: TraceConfig {
            days: 10,
            ..TraceConfig::default()
        },
        num_ads: 3000,
        ..ScenarioConfig::tiny()
    };
    let s = Scenario::generate(&cfg);
    println!(
        "setup: {} users, {} days, {} hostnames, {} ads in the database",
        s.population.len(),
        s.trace.days(),
        s.world.num_hosts(),
        s.ads.len()
    );

    let result = CtrExperiment::new(
        &s.world,
        &s.population,
        &s.trace,
        &s.ads,
        ExperimentConfig {
            pipeline: cfg.pipeline.clone(),
            // A short demo needs more eavesdropper impressions than the
            // paper's 15 % replacement rate yields, or the CTR estimate is
            // built from a handful of clicks; the full-rate run lives in
            // the `ctr_experiment` bench binary.
            impression_prob: 0.6,
            replace_prob: 0.4,
            ..ExperimentConfig::default()
        },
    )
    .run();

    println!("\ncampaign totals:");
    println!("  impressions            {}", result.impressions);
    println!(
        "  replaced by extension  {} ({:.1}%)",
        result.replaced,
        result.replaced_fraction() * 100.0
    );
    println!(
        "  reports / profiles     {} / {}",
        result.reports, result.profiles
    );

    println!("\nclick-through rates:");
    println!(
        "  Eavesdropper ads       {:.3}%",
        result.eaves_ctr() * 100.0
    );
    println!("  Original ads           {:.3}%", result.orig_ctr() * 100.0);
    println!("  (paper: 0.217% vs 0.168%)");

    let (a, b) = result.ctr_pairs();
    match paired_t_test(&a, &b) {
        Some(t) => {
            println!("\npaired t-test over {} users:", a.len());
            println!("  t = {:.3}, p = {:.4} (two-tailed)", t.t, t.p);
            println!(
                "  → difference {} significant at p < .05 (paper: p = .11333, not significant)",
                if t.significant(0.05) { "IS" } else { "is NOT" }
            );
        }
        None => println!("\npaired t-test undefined on this short run (too few clicks)"),
    }
}
