//! E7 — Sections 5.3 / 6 headline counts, scale model.
//!
//! The paper's deployment totals: 1329 installs, 17 countries, 600 M
//! connections to 470 K hostnames over the whole study, 2.4 M ad
//! impressions; during the one-month profiling phase, 75 M connections,
//! 270 K impressions, 41 K replaced. We run the simulator at the selected
//! scale and linearly extrapolate per-user-day rates to the paper's
//! 1329 users × 30 days, checking the orders of magnitude.

use hostprof::scenario::Scenario;
use hostprof_ads::{CtrExperiment, ExperimentConfig};
use hostprof_bench::{header, row, write_results, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct HeadlineResults {
    scale: String,
    users: usize,
    days: u32,
    connections: usize,
    unique_hostnames: usize,
    impressions: u64,
    replaced: u64,
    extrapolated_connections_1329x30: f64,
    extrapolated_impressions_1329x30: f64,
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());
    let stats = s.trace.stats();

    // The collection-phase harvest funnel (paper: raw capture → manual
    // filtering → ~12 K usable ads).
    let (_, harvest) = hostprof_ads::AdDatabase::harvest(
        &s.world,
        (s.config.num_ads as f64 * 1.2) as usize,
        s.config.ads_seed,
    );

    let config = ExperimentConfig {
        pipeline: s.config.pipeline.clone(),
        ..ExperimentConfig::default()
    };
    let result = CtrExperiment::new(&s.world, &s.population, &s.trace, &s.ads, config).run();

    let user_days = stats.active_users as f64 * stats.days as f64;
    let conn_rate = stats.connections as f64 / user_days;
    let impr_rate = result.impressions as f64 / user_days;
    let paper_user_days = 1329.0 * 30.0;

    header(&format!("Headline counts (scale: {})", scale.label()));
    row("users (active)", stats.active_users);
    row("days", stats.days);
    row("connections", stats.connections);
    row("unique hostnames", stats.unique_hosts);
    row("ad impressions", result.impressions);
    row("ads replaced", result.replaced);
    row(
        "ad harvest funnel",
        format!(
            "{} raw → {} broken, {} offensive → {} kept (paper: → 12K)",
            harvest.raw, harvest.broken, harvest.offensive, harvest.kept
        ),
    );
    println!();
    row("connections / user / day", format!("{conn_rate:.0}"));
    row(
        "extrapolated connections @1329×30d",
        format!("{:.1}M  (paper: 75M)", conn_rate * paper_user_days / 1e6),
    );
    row(
        "extrapolated impressions @1329×30d",
        format!("{:.0}K  (paper: 270K)", impr_rate * paper_user_days / 1e3),
    );
    row(
        "replaced fraction",
        format!(
            "{:.1}%  (paper: 41K/270K ≈ 15%)",
            result.replaced_fraction() * 100.0
        ),
    );

    write_results(
        "headline_counts",
        &HeadlineResults {
            scale: scale.label().to_string(),
            users: stats.active_users,
            days: stats.days,
            connections: stats.connections,
            unique_hostnames: stats.unique_hosts,
            impressions: result.impressions,
            replaced: result.replaced,
            extrapolated_connections_1329x30: conn_rate * paper_user_days,
            extrapolated_impressions_1329x30: impr_rate * paper_user_days,
        },
    );
}
