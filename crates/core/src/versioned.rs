//! Versioned, hot-swappable serving models (DESIGN.md §14).
//!
//! The always-on engine retrains incrementally between serve ticks, but a
//! tick must never block on — or observe half of — a model update. The
//! contract here is the classic epoch-pointer (arc-swap) shape:
//!
//! * a **version** is an immutable bundle `{seq, embeddings, ontology,
//!   prepared profiler state}` built off the serving thread. The unit-norm
//!   kNN copy and any IVF structure live inside
//!   [`PreparedProfiler`](crate::profiler::PreparedProfiler), so they are
//!   published in the *same* atomic store as the weights — a reader can
//!   never pair new weights with a stale index or vice versa;
//! * readers take the current version with **one atomic load**
//!   ([`VersionedModel::load`]) and profile against it for the whole tick.
//!   No lock, no reference count traffic, no wait — a publish that lands
//!   mid-tick simply takes effect on the next tick;
//! * writers serialize among themselves on a small mutex guarding the
//!   keep-alive history, then [`publish`](VersionedModel::publish) with a
//!   release store. Old versions stay alive until
//!   [`prune`](VersionedModel::prune), which requires `&mut self` — the
//!   borrow checker itself proves no reader still holds a reference.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use hostprof_embed::EmbeddingSet;
use hostprof_ontology::Ontology;

use crate::profiler::{PreparedProfiler, Profiler, ProfilerConfig};

/// One immutable, publishable serving model: embeddings plus every
/// derived structure a tick needs, built once and never mutated.
pub struct ModelVersion {
    seq: u64,
    embeddings: EmbeddingSet,
    ontology: Arc<Ontology>,
    prepared: PreparedProfiler,
}

impl ModelVersion {
    /// Build a version bundle: precomputes the labeled-host tables and the
    /// kNN index for `embeddings`. This is the expensive step and is meant
    /// to run off the serving thread; the subsequent
    /// [`VersionedModel::publish`] is O(1).
    pub fn build(
        seq: u64,
        embeddings: EmbeddingSet,
        ontology: Arc<Ontology>,
        config: ProfilerConfig,
    ) -> Self {
        let prepared = PreparedProfiler::build(&embeddings, &ontology, config);
        Self {
            seq,
            embeddings,
            ontology,
            prepared,
        }
    }

    /// Monotonic version number assigned by the builder.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The embeddings this version serves.
    pub fn embeddings(&self) -> &EmbeddingSet {
        &self.embeddings
    }

    /// The ontology this version was prepared against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Bind a profiler over this version. Cheap — three pointer copies;
    /// the tables and index were built in [`Self::build`].
    pub fn profiler(&self) -> Profiler<'_> {
        self.prepared.bind(&self.embeddings, &self.ontology)
    }
}

/// The hot-swap handle: an atomic pointer to the current [`ModelVersion`]
/// plus a keep-alive history so readers loaded from `&self` stay valid.
///
/// Readers call [`load`](Self::load) (wait-free). Writers call
/// [`publish`](Self::publish) (`&self`, serialized only against other
/// writers). Reclaiming superseded versions is [`prune`](Self::prune)
/// (`&mut self`), typically from whoever owns the handle once the serving
/// threads are quiesced or between ticks on a single-threaded driver.
pub struct VersionedModel {
    /// Pointer into the `Arc` currently serving. Arc contents have stable
    /// addresses, and the Arc itself is retained in `history`, so the
    /// pointee outlives every `&self`-derived reference.
    current: AtomicPtr<ModelVersion>,
    /// Every version published and not yet pruned, oldest first. The
    /// current version is always the last entry.
    history: Mutex<Vec<Arc<ModelVersion>>>,
}

impl VersionedModel {
    /// Start serving `initial`.
    pub fn new(initial: ModelVersion) -> Self {
        let arc = Arc::new(initial);
        let ptr = Arc::as_ptr(&arc) as *mut ModelVersion;
        Self {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![arc]),
        }
    }

    /// The current version — one acquire load, never blocks, never spins.
    ///
    /// The returned reference is tied to `&self`, which is what makes this
    /// sound: the backing `Arc` can only be dropped by
    /// [`prune`](Self::prune), and `prune` needs `&mut self`, which cannot
    /// coexist with the returned borrow.
    pub fn load(&self) -> &ModelVersion {
        // SAFETY: `current` always points into an `Arc` held by `history`
        // (set in `new`/`publish` before the store; removed only by
        // `prune(&mut self)`, which the returned lifetime excludes), and
        // `ModelVersion` is immutable after construction.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Sequence number of the currently served version.
    pub fn current_seq(&self) -> u64 {
        self.load().seq()
    }

    /// Atomically switch serving to `version`. Returns its `seq`.
    ///
    /// Takes `&self`: publishing happens concurrently with readers. The
    /// internal mutex serializes writers only — a reader mid-`load` is
    /// never delayed, it just resolves to whichever side of the store it
    /// raced to.
    pub fn publish(&self, version: ModelVersion) -> u64 {
        let seq = version.seq();
        let arc = Arc::new(version);
        let ptr = Arc::as_ptr(&arc) as *mut ModelVersion;
        let mut history = self.history.lock().expect("version history poisoned");
        // Retain before the store so no window exists where `current`
        // points at an un-kept version; holding the lock across the store
        // keeps `history`'s last entry == current under writer races.
        history.push(arc);
        self.current.store(ptr, Ordering::Release);
        seq
    }

    /// Number of versions currently kept alive (current included).
    pub fn versions_retained(&self) -> usize {
        self.history.lock().expect("version history poisoned").len()
    }

    /// Drop every superseded version, keeping only the current one.
    /// Returns how many were reclaimed. Requires `&mut self`, which is the
    /// proof that no outstanding [`load`](Self::load) borrow exists.
    pub fn prune(&mut self) -> usize {
        let current = self.current.load(Ordering::Acquire);
        let history = self.history.get_mut().expect("version history poisoned");
        let before = history.len();
        history.retain(|v| std::ptr::eq(Arc::as_ptr(v), current));
        before - history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use hostprof_embed::Vocab;
    use hostprof_ontology::{CategoryId, CategoryVector};

    fn embeddings(hosts: &[&str], dim: usize, salt: u64) -> EmbeddingSet {
        let vocab = Vocab::build(vec![hosts.to_vec(); 3], 1, 0.0);
        let mut vectors = Vec::with_capacity(vocab.len() * dim);
        for i in 0..vocab.len() * dim {
            // splitmix64, as elsewhere in the test-suite.
            let mut z = (i as u64 + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            vectors.push((z >> 11) as f32 / (1u64 << 53) as f32 - 0.5);
        }
        EmbeddingSet::new(dim, vocab, vectors)
    }

    fn ontology(hosts: &[&str]) -> Arc<Ontology> {
        let mut o = Ontology::new();
        for (i, h) in hosts.iter().enumerate() {
            o.insert(
                h,
                CategoryVector::from_pairs(vec![(CategoryId(i as u16 % 3), 1.0)]),
            );
        }
        Arc::new(o)
    }

    const HOSTS: [&str; 6] = [
        "news.example",
        "mail.example",
        "shop.example",
        "game.example",
        "video.example",
        "docs.example",
    ];

    fn version(seq: u64, salt: u64) -> ModelVersion {
        ModelVersion::build(
            seq,
            embeddings(&HOSTS, 4, salt),
            ontology(&HOSTS[..3]),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn load_sees_the_latest_publish() {
        let model = VersionedModel::new(version(1, 10));
        assert_eq!(model.current_seq(), 1);
        model.publish(version(2, 20));
        assert_eq!(model.current_seq(), 2);
        assert_eq!(model.versions_retained(), 2);
    }

    #[test]
    fn prune_keeps_only_the_current_version() {
        let mut model = VersionedModel::new(version(1, 10));
        model.publish(version(2, 20));
        model.publish(version(3, 30));
        assert_eq!(model.versions_retained(), 3);
        assert_eq!(model.prune(), 2);
        assert_eq!(model.versions_retained(), 1);
        assert_eq!(model.current_seq(), 3);
        // Pruning again is a no-op.
        assert_eq!(model.prune(), 0);
    }

    #[test]
    fn bound_profiler_matches_a_fresh_profiler_bitwise() {
        let set = embeddings(&HOSTS, 4, 77);
        let ont = ontology(&HOSTS[..3]);
        let v = ModelVersion::build(9, set.clone(), ont.clone(), ProfilerConfig::default());
        let fresh = Profiler::new(&set, &ont, ProfilerConfig::default());
        let session = Session::from_window(["news.example", "game.example", "video.example"], None);
        let a = v.profiler().profile(&session).expect("profile");
        let b = fresh.profile(&session).expect("profile");
        assert_eq!(
            a.categories
                .iter()
                .map(|(c, w)| (c, w.to_bits()))
                .collect::<Vec<_>>(),
            b.categories
                .iter()
                .map(|(c, w)| (c, w.to_bits()))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            a.session_vector
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.session_vector
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn concurrent_readers_never_block_or_tear() {
        // 4 reader threads hammer load() while the main thread publishes
        // 50 versions. Every observed version must be internally
        // consistent: seq N was built with salt 10*N, so the first vector
        // component identifies the build — a torn read would pair a seq
        // with the wrong weights.
        let model = Arc::new(VersionedModel::new(version(1, 10)));
        let expected_first =
            |seq: u64| embeddings(&HOSTS, 4, 10 * seq).vector_by_index(0)[0].to_bits();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let model = Arc::clone(&model);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let v = model.load();
                    let first = v.embeddings().vector_by_index(0)[0].to_bits();
                    assert_eq!(first, expected_first(v.seq()), "torn version");
                }
                // The release-store on `stop` happens after the last
                // publish, so this final load must see version 50.
                model.load().seq()
            }));
        }
        for seq in 2..=50 {
            model.publish(version(seq, 10 * seq));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            let last = r.join().expect("reader panicked");
            assert_eq!(last, 50, "reader missed the final publish");
        }
        assert_eq!(model.current_seq(), 50);
        assert_eq!(model.versions_retained(), 50);
    }
}
