//! # hostprof-stats
//!
//! The statistics toolkit behind the paper's evaluation:
//!
//! * [`descriptive`] — means, variances, percentiles;
//! * [`ccdf`] — survival functions (Figures 2 and 3 plot CCDFs of per-user
//!   hostname / category counts);
//! * [`bootstrap`] — percentile bootstrap confidence intervals for the
//!   CTR difference;
//! * [`proportion`] — a two-proportion z-test as a complementary
//!   significance check on pooled CTRs;
//! * [`ttest`] — the paired two-tailed Student t-test of Section 6.4
//!   ("resulting p-value was .11333"), with the Student CDF computed from a
//!   from-scratch regularized incomplete beta function;
//! * [`tsne`] / [`bhtsne`] — exact and Barnes–Hut t-SNE implementations
//!   for the Figure 4 embedding visualization (the quadtree lives in
//!   [`quadtree`]);
//! * [`purity`] — quantitative cluster-quality metrics (neighbor purity,
//!   intra/inter similarity gap) that turn the paper's qualitative Figure 5
//!   discussion into testable numbers.

pub mod bhtsne;
pub mod bootstrap;
pub mod ccdf;
pub mod descriptive;
pub mod proportion;
pub mod purity;
pub mod quadtree;
pub mod tsne;
pub mod ttest;

pub use bhtsne::{BhTsne, BhTsneConfig};
pub use bootstrap::{bootstrap_mean_ci, bootstrap_paired_diff_ci, ConfidenceInterval};
pub use ccdf::Ccdf;
pub use descriptive::Summary;
pub use proportion::{two_proportion_z_test, PropTestResult};
pub use purity::{neighbor_purity, similarity_gap};
pub use tsne::{Tsne, TsneConfig};
pub use ttest::{paired_t_test, TTestResult};
