//! Precomputed sigmoid, as in the reference word2vec implementation.
//!
//! The inner SGD loop evaluates `σ(x)` for every (center, context) pair and
//! every negative sample; a 1000-slot lookup table over `[-6, 6]` replaces
//! the `exp` call, and dot products outside that range saturate to 0/1 —
//! identical behaviour to word2vec's `EXP_TABLE`.

/// Table resolution.
pub const TABLE_SIZE: usize = 1000;
/// Saturation bound: `σ(±MAX_EXP)` is treated as 1/0.
pub const MAX_EXP: f32 = 6.0;

/// The lookup table.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: [f32; TABLE_SIZE],
}

impl SigmoidTable {
    /// Precompute the table.
    pub fn new() -> Self {
        let mut table = [0f32; TABLE_SIZE];
        for (i, slot) in table.iter_mut().enumerate() {
            // x spans [-MAX_EXP, MAX_EXP).
            let x = (i as f32 / TABLE_SIZE as f32 * 2.0 - 1.0) * MAX_EXP;
            let e = x.exp();
            *slot = e / (e + 1.0);
        }
        Self { table }
    }

    /// `σ(x)` with saturation outside `[-MAX_EXP, MAX_EXP]`.
    #[inline]
    pub fn get(&self, x: f32) -> f32 {
        if x >= MAX_EXP {
            1.0
        } else if x <= -MAX_EXP {
            0.0
        } else {
            let i = ((x + MAX_EXP) / (2.0 * MAX_EXP) * TABLE_SIZE as f32) as usize;
            self.table[i.min(TABLE_SIZE - 1)]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_sigmoid_within_table_resolution() {
        let t = SigmoidTable::new();
        for i in -50..=50 {
            let x = i as f32 * 0.1;
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!(
                (t.get(x) - exact).abs() < 0.01,
                "x={x}: {} vs {exact}",
                t.get(x)
            );
        }
    }

    #[test]
    fn saturates_at_the_bounds() {
        let t = SigmoidTable::new();
        assert_eq!(t.get(100.0), 1.0);
        assert_eq!(t.get(-100.0), 0.0);
        assert_eq!(t.get(MAX_EXP), 1.0);
        assert_eq!(t.get(-MAX_EXP), 0.0);
    }

    #[test]
    fn is_monotone() {
        let t = SigmoidTable::new();
        let mut prev = -1.0f32;
        for i in -60..=60 {
            let v = t.get(i as f32 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn midpoint_is_half() {
        let t = SigmoidTable::new();
        assert!((t.get(0.0) - 0.5).abs() < 0.01);
    }
}
