//! E6 — Section 4 / 5.4 in-text measurements.
//!
//! * "Google Adwords classifies only 10.6 % of the hostnames in our
//!   dataset" — ontology coverage over the visited universe;
//! * "67 % of the 470 K hostnames … returned an error/empty page when we
//!   tried to download the website content" — the CDN/API/tracker share;
//! * "Roughly 3 K different hostnames included on these block-lists were
//!   visited by our users … 6.1 M out of … 75 M connections (more than
//!   8 %)" — blocklist hit rates.

use hostprof::scenario::Scenario;
use hostprof_bench::{header, row, write_results, Scale};
use serde::Serialize;
use std::collections::HashSet;

#[derive(Serialize)]
struct CoverageResults {
    scale: String,
    visited_hostnames: usize,
    ontology_coverage_pct: f64,
    uncrawlable_pct: f64,
    blocked_hostnames: usize,
    blocked_connection_pct: f64,
    blocklist_sizes: Vec<(String, usize)>,
    top100_tracker_share: f64,
}

fn main() {
    let scale = Scale::from_env();
    let s = Scenario::generate(&scale.scenario());

    // Universe = hostnames actually visited in the trace (as in the paper).
    let visited: HashSet<&str> = s
        .trace
        .requests()
        .iter()
        .map(|r| s.world.hostname(r.host))
        .collect();
    let coverage = s.world.ontology().coverage(visited.iter().copied());

    // Crawlability of the *visited* universe.
    let uncrawlable = visited
        .iter()
        .filter(|h| {
            let id = s.world.host_id_by_name(h).expect("visited host exists");
            matches!(
                s.world.host(id).kind,
                hostprof_synth::HostKind::Cdn
                    | hostprof_synth::HostKind::Api
                    | hostprof_synth::HostKind::Tracker
            )
        })
        .count();
    let uncrawlable_pct = uncrawlable as f64 / visited.len() as f64 * 100.0;

    // Blocklist hit rates over connections.
    let filter = s
        .world
        .blocklist()
        .filter_stats(s.trace.requests().iter().map(|r| s.world.hostname(r.host)));

    // "Roughly 50 of the top 100 hostnames belong to trackers/advertisers".
    let mut by_host: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for r in s.trace.requests() {
        *by_host.entry(s.world.hostname(r.host)).or_insert(0) += 1;
    }
    let mut top: Vec<(&str, usize)> = by_host.into_iter().collect();
    top.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
    let top100_trackers = top
        .iter()
        .take(100)
        .filter(|(h, _)| s.world.blocklist().is_blocked(h))
        .count();

    header(&format!(
        "Coverage & filtering stats (scale: {})",
        scale.label()
    ));
    row("hostnames visited", visited.len());
    row(
        "ontology (Adwords-like) coverage",
        format!("{:.1}%  (paper: 10.6%)", coverage.fraction() * 100.0),
    );
    row(
        "uncrawlable hostnames (CDN/API/tracker)",
        format!("{uncrawlable_pct:.1}%  (paper: 67%)"),
    );
    row(
        "blocklisted hostnames visited",
        format!("{}  (paper: ~3K)", filter.blocked_hostnames),
    );
    row(
        "connections to blocklisted hosts",
        format!(
            "{:.1}%  (paper: >8%, 6.1M of 75M)",
            filter.blocked_fraction() * 100.0
        ),
    );
    row(
        "trackers among top-100 hostnames",
        format!("{top100_trackers}  (paper: ~50)"),
    );
    for p in s.world.blocklist().providers() {
        row(&format!("  blocklist '{}'", p.name), p.len());
    }

    write_results(
        "coverage_stats",
        &CoverageResults {
            scale: scale.label().to_string(),
            visited_hostnames: visited.len(),
            ontology_coverage_pct: coverage.fraction() * 100.0,
            uncrawlable_pct,
            blocked_hostnames: filter.blocked_hostnames,
            blocked_connection_pct: filter.blocked_fraction() * 100.0,
            blocklist_sizes: s
                .world
                .blocklist()
                .providers()
                .iter()
                .map(|p| (p.name.clone(), p.len()))
                .collect(),
            top100_tracker_share: top100_trackers as f64 / 100.0,
        },
    );
}
