//! Naive Eq. 3/4 category aggregation (§4.3).
//!
//! Eq. 3: a session's interest profile is the α-weighted average of the
//! category vectors of labeled hosts — the labeled neighbors of the
//! session embedding (α = cosine similarity, clamped at 0) plus the
//! labeled hosts visited in the session itself (α = 1).
//!
//! Eq. 4: per-category importances are normalized by the total α mass,
//! clamped to `[0, 1]`, zero-weight categories dropped.
//!
//! The oracle mirrors the production `Profiler` contribution order
//! exactly (neighbors in kNN order, then in-session hosts in visit
//! order; within a host, categories in id order) so f32 accumulation is
//! bit-comparable, but stores the accumulator as a first-touch-ordered
//! `Vec` with linear search instead of an epoch-stamped dense scratch.

use crate::knn;

/// One session host, pre-resolved against vocabulary and ontology.
#[derive(Debug, Clone)]
pub struct SessionHost {
    /// Embedding row of this host, when in vocabulary.
    pub vocab_idx: Option<u32>,
    /// `(category, weight)` pairs in id order, when in the ontology.
    pub categories: Option<Vec<(u16, f32)>>,
}

/// Oracle twin of `SessionProfile`.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleProfile {
    /// `(category, importance)` in category-id order (Eq. 4).
    pub categories: Vec<(u16, f32)>,
    /// Mean of in-vocabulary session host embeddings (empty if none).
    pub session_vector: Vec<f32>,
    /// Labeled hosts visited in the session itself.
    pub labeled_in_session: usize,
    /// Labeled hosts contributing as embedding-space neighbors.
    pub labeled_neighbors: usize,
}

/// Mean session vector over in-vocabulary hosts, in visit order.
/// `None` when no session host is in vocabulary.
pub fn mean_session_vector(hosts: &[SessionHost], rows: &[f32], dim: usize) -> Option<Vec<f32>> {
    let mut acc = vec![0.0f32; dim];
    let mut weight_sum = 0.0f32;
    for h in hosts {
        if let Some(idx) = h.vocab_idx {
            let row = &rows[idx as usize * dim..(idx as usize + 1) * dim];
            for (a, &r) in acc.iter_mut().zip(row) {
                *a += 1.0 * r;
            }
            weight_sum += 1.0;
        }
    }
    if weight_sum <= 0.0 {
        return None;
    }
    for a in &mut acc {
        *a /= weight_sum;
    }
    Some(acc)
}

/// Profile one session (mean aggregation): Eq. 3 accumulation over the
/// `n_neighbors` nearest labeled rows plus in-session labeled hosts,
/// then Eq. 4 normalization. `labeled[idx]` carries the category vector
/// of vocabulary row `idx` when that host is in the ontology.
///
/// `None` when nothing contributes — no session vector *and* no labeled
/// session host.
pub fn profile(
    hosts: &[SessionHost],
    rows: &[f32],
    dim: usize,
    labeled: &[Option<Vec<(u16, f32)>>],
    n_neighbors: usize,
) -> Option<OracleProfile> {
    if hosts.is_empty() {
        return None;
    }

    // Labeled session hosts by vocabulary row, for the "don't count a
    // visited host again as its own neighbor" rule.
    let mut in_session: Vec<u32> = hosts
        .iter()
        .filter(|h| h.categories.is_some())
        .filter_map(|h| h.vocab_idx)
        .collect();
    in_session.sort_unstable();

    let session_vector = mean_session_vector(hosts, rows, dim);
    let neighbors = match &session_vector {
        Some(sv) => knn::nearest(rows, dim, sv, n_neighbors),
        None => Vec::new(),
    };

    // First-touch-ordered accumulator: matches the production scratch's
    // per-category f32 accumulation order exactly.
    let mut touched: Vec<(u16, f32)> = Vec::new();
    let add = |touched: &mut Vec<(u16, f32)>, cats: &[(u16, f32)], alpha: f32| {
        for &(c, w) in cats {
            match touched.iter_mut().find(|(id, _)| *id == c) {
                Some((_, acc)) => *acc += alpha * w,
                None => touched.push((c, alpha * w)),
            }
        }
    };

    let mut alpha_sum = 0.0f32;
    let mut labeled_neighbors = 0usize;
    let mut contributions = 0usize;

    for &(idx, sim) in &neighbors {
        if in_session.binary_search(&idx).is_ok() {
            continue;
        }
        let Some(cats) = labeled.get(idx as usize).and_then(|c| c.as_ref()) else {
            continue;
        };
        let alpha = sim.max(0.0);
        if alpha > 0.0 {
            alpha_sum += alpha;
            add(&mut touched, cats, alpha);
            labeled_neighbors += 1;
            contributions += 1;
        }
    }
    for h in hosts {
        if let Some(cats) = &h.categories {
            alpha_sum += 1.0;
            add(&mut touched, cats, 1.0);
            contributions += 1;
        }
    }
    if contributions == 0 {
        return None;
    }

    // Eq. 4: normalize by total α mass, clamp to [0, 1], drop zeros,
    // order by category id (the production CategoryVector invariants).
    let mut categories: Vec<(u16, f32)> = touched
        .into_iter()
        .map(|(c, acc)| (c, (acc / alpha_sum).clamp(0.0, 1.0)))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    categories.sort_unstable_by_key(|&(c, _)| c);

    let labeled_in_session = hosts.iter().filter(|h| h.categories.is_some()).count();
    Some(OracleProfile {
        categories,
        session_vector: session_vector.unwrap_or_default(),
        labeled_in_session,
        labeled_neighbors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(idx: Option<u32>, cats: Option<&[(u16, f32)]>) -> SessionHost {
        SessionHost {
            vocab_idx: idx,
            categories: cats.map(|c| c.to_vec()),
        }
    }

    #[test]
    fn in_session_labels_dominate_without_embeddings() {
        // No vocabulary rows at all: Eq. 3 degenerates to averaging the
        // visited labeled hosts with α = 1.
        let hosts = vec![
            host(None, Some(&[(2, 1.0)])),
            host(None, Some(&[(2, 0.5), (7, 1.0)])),
            host(None, None),
        ];
        let p = profile(&hosts, &[], 0, &[], 10).expect("profile");
        assert_eq!(p.labeled_in_session, 2);
        assert_eq!(p.labeled_neighbors, 0);
        assert!(p.session_vector.is_empty());
        // alpha_sum = 2: cat 2 → (1.0 + 0.5)/2, cat 7 → 1.0/2.
        assert_eq!(p.categories.len(), 2);
        assert!((p.categories[0].1 - 0.75).abs() < 1e-6);
        assert!((p.categories[1].1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn visited_hosts_are_not_double_counted_as_neighbors() {
        // Two rows pointing the same way; row 0 is visited and labeled,
        // row 1 is its labeled neighbor.
        let rows = [1.0f32, 0.0, 1.0, 0.0];
        let labeled = vec![Some(vec![(1u16, 1.0f32)]), Some(vec![(3u16, 1.0f32)])];
        let hosts = vec![host(Some(0), Some(&[(1, 1.0)]))];
        let p = profile(&hosts, &rows, 2, &labeled, 5).expect("profile");
        // Row 0 contributes only as in-session (α=1); row 1 as neighbor
        // (α=1.0 cosine).
        assert_eq!(p.labeled_in_session, 1);
        assert_eq!(p.labeled_neighbors, 1);
        assert_eq!(p.categories.len(), 2);
    }

    #[test]
    fn empty_session_profiles_to_none() {
        assert!(profile(&[], &[], 2, &[], 5).is_none());
        // Unlabeled, out-of-vocab host: nothing contributes.
        let hosts = vec![host(None, None)];
        assert!(profile(&hosts, &[], 2, &[], 5).is_none());
    }
}
