//! Session extraction.
//!
//! A session `s_u^T` is "the sequence of hosts visited by user u in the
//! last window of length T" (Section 4.1) with two paper-mandated
//! clean-ups:
//!
//! * **first-visit deduplication** — "if a host was visited more than one
//!   time during the last window, the algorithm only takes into account the
//!   first visit", neutralizing streaming services that open dozens of
//!   connections;
//! * **tracker filtering** (Section 5.4) — hostnames on the ad/tracker
//!   blocklists "add noise without providing any valuable information" and
//!   are removed before profiling.

use hostprof_ontology::Blocklist;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A cleaned browsing session: unique hostnames in first-visit order.
///
/// ```
/// use hostprof_core::Session;
/// // A streaming site opening three connections collapses to one visit.
/// let s = Session::from_window(
///     ["news.example", "video.example", "video.example", "video.example"],
///     None,
/// );
/// assert_eq!(s.hostnames(), &["news.example", "video.example"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Session {
    hostnames: Vec<String>,
}

impl Session {
    /// Build from a raw hostname window (duplicates allowed, time order),
    /// applying first-visit dedup and optional blocklist filtering.
    pub fn from_window<'a, I>(window: I, blocklist: Option<&Blocklist>) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut seen = HashSet::new();
        let mut hostnames = Vec::new();
        for h in window {
            let lower = h.to_ascii_lowercase();
            if let Some(b) = blocklist {
                if b.is_blocked(&lower) {
                    continue;
                }
            }
            if seen.insert(lower.clone()) {
                hostnames.push(lower);
            }
        }
        Self { hostnames }
    }

    /// Hostnames in first-visit order.
    pub fn hostnames(&self) -> &[String] {
        &self.hostnames
    }

    /// Iterate hostnames as `&str`.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.hostnames.iter().map(String::as_str)
    }

    /// Number of distinct hostnames.
    pub fn len(&self) -> usize {
        self.hostnames.len()
    }

    /// Whether the session is empty. The paper notes `s_u^T` "cannot be an
    /// empty set since the profiling algorithm is only executed for users
    /// that are currently browsing" — but a window made purely of tracker
    /// traffic *can* empty out after filtering, so callers must check.
    pub fn is_empty(&self) -> bool {
        self.hostnames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostprof_ontology::BlocklistProvider;

    #[test]
    fn first_visit_order_is_kept_and_duplicates_dropped() {
        let s = Session::from_window(["b.com", "a.com", "b.com", "c.com", "a.com"], None);
        assert_eq!(s.hostnames(), &["b.com", "a.com", "c.com"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn casing_is_normalized_before_dedup() {
        let s = Session::from_window(["A.com", "a.COM"], None);
        assert_eq!(s.hostnames(), &["a.com"]);
    }

    #[test]
    fn blocklisted_hosts_are_removed() {
        let b = Blocklist::from_providers(vec![BlocklistProvider::new("t", ["tracker.net"])]);
        let s = Session::from_window(
            ["site.com", "tracker.net", "px.tracker.net", "other.com"],
            Some(&b),
        );
        assert_eq!(s.hostnames(), &["site.com", "other.com"]);
    }

    #[test]
    fn all_tracker_window_empties_out() {
        let b = Blocklist::from_providers(vec![BlocklistProvider::new("t", ["tracker.net"])]);
        let s = Session::from_window(["tracker.net", "tracker.net"], Some(&b));
        assert!(s.is_empty());
    }

    #[test]
    fn empty_window_is_empty_session() {
        let s = Session::from_window(std::iter::empty(), None);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
